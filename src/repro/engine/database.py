"""The catalog-level facade over hierarchies and relations."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.integrity import IntegrityChecker
from repro.core.preemption import OFF_PATH, STRATEGIES, PreemptionStrategy
from repro.core.relation import HRelation
from repro.core.schema import RelationSchema
from repro.core.views import MaterializedView, ViewPlan, ViewRegistry
from repro.engine.querycache import QueryCache
from repro.errors import CatalogError
from repro.hierarchy.graph import Hierarchy
from repro.obs import MetricsRegistry, SlowQueryLog
from repro import planner as _planner


class HierarchicalDatabase:
    """A named catalog of hierarchies and hierarchical relations.

    All data manipulation goes through transactions (see
    :meth:`transaction`); the convenience mutators here each run a
    one-statement transaction, so a single inconsistent insert is
    rejected exactly like a batched one would be.

    Examples
    --------
    >>> db = HierarchicalDatabase("zoo")
    >>> animal = db.create_hierarchy("animal")
    >>> animal.add_class("bird")
    >>> _ = db.create_relation("flies", [("creature", "animal")])
    >>> db.insert("flies", ("bird",))
    >>> db.relation("flies").holds("bird")
    True
    """

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self.hierarchies: Dict[str, Hierarchy] = {}
        self.relations: Dict[str, HRelation] = {}
        self.checker = IntegrityChecker()
        self._relation_checkers: Dict[str, IntegrityChecker] = {}
        #: Per-database metrics registry (``querycache.*``, ``txn.*``,
        #: ``hql.*``); core-layer metrics live in the process-global
        #: :func:`repro.obs.default_registry` instead.  ``STATS;``
        #: renders both.
        self.metrics = MetricsRegistry()
        #: Engine-level result cache for read-only HQL statements.
        #: Version stamps in the keys make DML invalidation implicit;
        #: the DDL paths below call :meth:`QueryCache.invalidate_relation`
        #: whenever an *object* is replaced under an existing name.
        #: Admission rides the planner's cost policy: under eviction
        #: pressure, payloads cheaper to recompute than to look up are
        #: rejected and hot expensive entries are pinned (the policy
        #: reads this registry's ``hql.statement.ms`` to adapt its
        #: floor; ``REPRO_PLANNER=0`` / ``SET PLANNER OFF`` restores
        #: admit-all).
        self.query_cache = QueryCache(
            registry=self.metrics, admission=_planner.cache_admission(self.metrics)
        )
        self.views = ViewRegistry()
        #: Declarative record of every :meth:`define_view` call
        #: (``name -> {"op", "sources", "conditions"}``).  A
        #: :class:`~repro.core.views.ViewPlan` holds opaque resolver
        #: callables, so this is what snapshots persist and restore.
        self.view_definitions: Dict[str, Dict[str, object]] = {}
        #: Attached by :meth:`enable_slow_query_log`; while present the
        #: HQL executor traces every statement and offers it to the log.
        self.slow_query_log: Optional[SlowQueryLog] = None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def enable_slow_query_log(
        self, threshold_ms: float = 100.0, maxlen: int = 128
    ) -> SlowQueryLog:
        """Start recording statements slower than ``threshold_ms``.
        Each entry keeps the statement text, elapsed time, and span
        tree (tracing is forced on per statement while the log is
        attached).  Returns the log; reconfigure by calling again."""
        self.slow_query_log = SlowQueryLog(threshold_ms, maxlen)
        self.metrics.gauge("slowlog.threshold_ms").set(threshold_ms)
        return self.slow_query_log

    def disable_slow_query_log(self) -> None:
        self.slow_query_log = None
        self.metrics.gauge("slowlog.threshold_ms").set(0)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_hierarchy(self, name: str, root: str | None = None) -> Hierarchy:
        if name in self.hierarchies:
            raise CatalogError("hierarchy {!r} already exists".format(name))
        hierarchy = Hierarchy(name, root=root)
        self.hierarchies[name] = hierarchy
        return hierarchy

    def register_hierarchy(self, hierarchy: Hierarchy) -> Hierarchy:
        """Adopt an externally-built hierarchy into the catalog."""
        if hierarchy.name in self.hierarchies:
            raise CatalogError("hierarchy {!r} already exists".format(hierarchy.name))
        self.hierarchies[hierarchy.name] = hierarchy
        return hierarchy

    def hierarchy(self, name: str) -> Hierarchy:
        try:
            return self.hierarchies[name]
        except KeyError:
            raise CatalogError("unknown hierarchy {!r}".format(name)) from None

    def create_relation(
        self,
        name: str,
        attributes: Sequence[Tuple[str, Union[str, Hierarchy]]],
        strategy: Union[str, PreemptionStrategy] = OFF_PATH,
    ) -> HRelation:
        """Create a relation whose attributes name catalogued hierarchies
        (or pass hierarchy objects directly)."""
        if name in self.relations:
            raise CatalogError("relation {!r} already exists".format(name))
        resolved = [
            (attr, self.hierarchy(h) if isinstance(h, str) else h)
            for attr, h in attributes
        ]
        if isinstance(strategy, str):
            try:
                strategy = STRATEGIES[strategy]
            except KeyError:
                raise CatalogError(
                    "unknown preemption strategy {!r}; known: {}".format(
                        strategy, sorted(STRATEGIES)
                    )
                ) from None
        relation = HRelation(RelationSchema(resolved), name=name, strategy=strategy)
        self.relations[name] = relation
        # A fresh object may reuse a dropped relation's name with a
        # colliding version counter; stale entries must not survive.
        self.query_cache.invalidate_relation(name)
        return relation

    def register_relation(self, relation: HRelation) -> HRelation:
        if relation.name in self.relations:
            raise CatalogError("relation {!r} already exists".format(relation.name))
        self.relations[relation.name] = relation
        self.query_cache.invalidate_relation(relation.name)
        return relation

    def relation(self, name: str) -> HRelation:
        try:
            return self.relations[name]
        except KeyError:
            raise CatalogError("unknown relation {!r}".format(name)) from None

    def drop_relation(self, name: str) -> None:
        if name not in self.relations:
            raise CatalogError("unknown relation {!r}".format(name))
        del self.relations[name]
        self.query_cache.invalidate_relation(name)

    def drop_hierarchy(self, name: str) -> None:
        hierarchy = self.hierarchy(name)
        users = [
            r.name
            for r in self.relations.values()
            if any(h is hierarchy for h in r.schema.hierarchies)
        ]
        if users:
            raise CatalogError(
                "hierarchy {!r} is used by relations {}".format(name, users)
            )
        del self.hierarchies[name]

    # ------------------------------------------------------------------
    # materialized views
    # ------------------------------------------------------------------

    def define_view(
        self,
        name: str,
        op: str,
        sources: Sequence[str],
        conditions: Optional[Mapping[str, str]] = None,
    ) -> MaterializedView:
        """Define a plan-backed materialized view over catalogued
        relations.

        ``sources`` are relation *names*, resolved against the catalog
        on every access — so the view tracks DROP + CREATE under the
        same name instead of pinning a dead object.  Views over the
        pointwise operators (``select``, ``union``, ``intersection``,
        ``difference``) refresh incrementally from the sources' delta
        logs; ``join`` and ``divide`` views recompute fully when stale.
        """
        for source in sources:
            self.relation(source)  # must exist now; resolved again later
        resolvers = [
            (lambda n=source: self.relation(n)) for source in sources
        ]
        plan = ViewPlan(op, resolvers, conditions)
        view = self.views.define(name, plan=plan)
        self.view_definitions[name] = {
            "op": op,
            "sources": list(sources),
            "conditions": dict(conditions or {}),
        }
        return view

    def view(self, name: str) -> MaterializedView:
        try:
            return self.views.view(name)
        except KeyError:
            raise CatalogError("unknown view {!r}".format(name)) from None

    def drop_view(self, name: str) -> None:
        try:
            self.views.drop(name)
        except KeyError:
            raise CatalogError("unknown view {!r}".format(name)) from None
        self.view_definitions.pop(name, None)

    # ------------------------------------------------------------------
    # application-level constraints (section 3.1's "catalog" constraints)
    # ------------------------------------------------------------------

    def add_constraint(self, relation_name: str, constraint_name: str, predicate) -> None:
        """Register a predicate that must hold for ``relation_name``
        after every commit touching it (e.g. a cardinality cap or a
        required tuple).  The predicate receives the candidate relation
        state and returns a bool."""
        self.relation(relation_name)  # must exist
        checker = self._relation_checkers.setdefault(relation_name, IntegrityChecker())
        checker.add_constraint(constraint_name, predicate)

    def remove_constraint(self, relation_name: str, constraint_name: str) -> None:
        checker = self._relation_checkers.get(relation_name)
        if checker is not None:
            checker.remove_constraint(constraint_name)

    def constraints_for(self, relation_name: str) -> list:
        checker = self._relation_checkers.get(relation_name)
        return checker.constraint_names() if checker is not None else []

    def checker_for(self, relation_name: str):
        """The per-relation checker, or ``None`` (used at commit)."""
        return self._relation_checkers.get(relation_name)

    # ------------------------------------------------------------------
    # DML (single-statement transactions)
    # ------------------------------------------------------------------

    def transaction(self) -> "Transaction":
        from repro.engine.transactions import Transaction

        return Transaction(self)

    def insert(self, relation_name: str, item: Sequence[str], truth: bool = True) -> None:
        """Insert one signed tuple, rejecting it if it leaves the
        relation with an unresolved conflict."""
        with self.transaction() as txn:
            txn.assert_item(relation_name, item, truth=truth)

    def delete(self, relation_name: str, item: Sequence[str]) -> None:
        """Delete the tuple at ``item``, rejecting the deletion if it
        *creates* a conflict (removing a resolution tuple can)."""
        with self.transaction() as txn:
            txn.retract(relation_name, item)

    def consolidate_in_place(self, relation_name: str) -> int:
        """Consolidate a stored relation; returns tuples removed."""
        relation = self.relation(relation_name)
        before = len(relation)
        compacted = relation.consolidated()
        self.relations[relation_name] = compacted
        self.query_cache.invalidate_relation(relation_name)
        return before - len(compacted)

    def explicate_in_place(
        self, relation_name: str, attributes: Sequence[str] | None = None
    ) -> int:
        """Explicate a stored relation; returns the tuple-count delta."""
        relation = self.relation(relation_name)
        before = len(relation)
        flattened = relation.explicated(attributes)
        self.relations[relation_name] = flattened
        self.query_cache.invalidate_relation(relation_name)
        return len(flattened) - before

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def execute(self, text: str) -> List[object]:
        """Run one or more HQL statements; returns one result per
        statement (see :mod:`repro.engine.hql`)."""
        from repro.engine.hql import execute

        return execute(self, text)

    def save(self, path: str) -> None:
        from repro.engine.storage import save_database

        save_database(self, path)

    @classmethod
    def load(cls, path: str) -> "HierarchicalDatabase":
        from repro.engine.storage import load_database

        return load_database(path)

    def __repr__(self) -> str:
        return "HierarchicalDatabase({!r}, {} hierarchies, {} relations)".format(
            self.name, len(self.hierarchies), len(self.relations)
        )
