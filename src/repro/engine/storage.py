"""JSON persistence for whole databases.

The format is versioned and human-readable: hierarchies serialise as
node lists in insertion order (each with its parents and an instance
flag) plus preference edges; relations serialise as attribute bindings
plus signed tuples.  ``load_database(save_database(db))`` round-trips
everything, including preemption strategies.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional

from repro.core.preemption import STRATEGIES
from repro.errors import StorageError
from repro.hierarchy.graph import Hierarchy

FORMAT_NAME = "repro-db"
#: Version 2 added the ``views`` list; version-1 files still load.
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)


def database_to_dict(database) -> Dict[str, Any]:
    """The serialisable form of a database."""
    hierarchies = []
    for hierarchy in database.hierarchies.values():
        nodes = []
        for node in hierarchy.nodes():
            if node == hierarchy.root:
                continue
            nodes.append(
                {
                    "name": node,
                    "parents": sorted(hierarchy.parents(node)),
                    "instance": hierarchy.is_instance(node),
                }
            )
        hierarchies.append(
            {
                "name": hierarchy.name,
                "root": hierarchy.root,
                "nodes": nodes,
                "preference_edges": [
                    list(edge) for edge in hierarchy.preference_edges()
                ],
            }
        )
    relations = []
    for relation in database.relations.values():
        relations.append(
            {
                "name": relation.name,
                "strategy": relation.strategy.name,
                "attributes": [
                    [attr, h.name]
                    for attr, h in zip(
                        relation.schema.attributes, relation.schema.hierarchies
                    )
                ],
                "tuples": [[list(t.item), t.truth] for t in relation.tuples()],
            }
        )
    views = [
        {
            "name": name,
            "op": spec["op"],
            "sources": list(spec["sources"]),
            "conditions": dict(spec["conditions"]),
        }
        for name, spec in sorted(
            getattr(database, "view_definitions", {}).items()
        )
    ]
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": database.name,
        "hierarchies": hierarchies,
        "relations": relations,
        "views": views,
    }


def database_from_dict(payload: Dict[str, Any]):
    """Rebuild a database from :func:`database_to_dict` output."""
    from repro.engine.database import HierarchicalDatabase

    if payload.get("format") != FORMAT_NAME:
        raise StorageError(
            "not a {} file (format={!r})".format(FORMAT_NAME, payload.get("format"))
        )
    if payload.get("version") not in SUPPORTED_VERSIONS:
        raise StorageError(
            "unsupported format version {!r} (supported: {})".format(
                payload.get("version"), ", ".join(map(str, SUPPORTED_VERSIONS))
            )
        )
    database = HierarchicalDatabase(payload.get("name", "db"))
    for spec in payload.get("hierarchies", ()):
        hierarchy = Hierarchy(spec["name"], root=spec.get("root"))
        # Nodes are stored in insertion order, so parents always precede
        # children; first parent creates the node, the rest become edges.
        for node in spec.get("nodes", ()):
            parents = node.get("parents") or [hierarchy.root]
            if node.get("instance"):
                hierarchy.add_instance(node["name"], parents=parents[:1])
            else:
                hierarchy.add_class(node["name"], parents=parents[:1])
            for parent in parents[1:]:
                hierarchy.add_edge(parent, node["name"])
        for weaker, stronger in spec.get("preference_edges", ()):
            hierarchy.add_preference_edge(weaker, stronger)
        database.register_hierarchy(hierarchy)
    for spec in payload.get("relations", ()):
        strategy_name = spec.get("strategy", "off-path")
        if strategy_name not in STRATEGIES:
            raise StorageError("unknown preemption strategy {!r}".format(strategy_name))
        relation = database.create_relation(
            spec["name"],
            [(attr, hier) for attr, hier in spec["attributes"]],
            strategy=STRATEGIES[strategy_name],
        )
        for item, truth in spec.get("tuples", ()):
            relation.assert_item(tuple(item), truth=bool(truth))
    for spec in payload.get("views", ()):
        database.define_view(
            spec["name"],
            spec["op"],
            list(spec.get("sources", ())),
            spec.get("conditions") or None,
        )
    return database


def write_json_atomic(path: str, payload: Dict[str, Any]) -> None:
    """Crash-safely write ``payload`` as JSON to ``path``.

    The bytes go to an anonymous temp file *in the same directory*
    (``os.replace`` must not cross filesystems), are fsynced, and only
    then renamed into place — a crash at any point leaves either the
    old complete file or the new complete file, never a torn one.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def write_bytes_atomic(path: str, data: bytes) -> None:
    """Crash-safely write raw bytes to ``path`` (binary twin of
    :func:`write_json_atomic`: same-directory temp file + fsync +
    ``os.replace``)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def save_database_binary(
    database, path: str, extra: Optional[Dict[str, Any]] = None
) -> None:
    """Write the database to ``path`` in the binary columnar snapshot
    format (see :mod:`repro.engine.codec`), with the same crash-safety
    and ``extra``-stamping contract as :func:`save_database`."""
    from repro.engine.codec import encode_snapshot

    data = encode_snapshot(database, extra)
    try:
        write_bytes_atomic(path, data)
    except OSError as exc:
        raise StorageError("cannot write {}: {}".format(path, exc)) from exc


def read_binary_snapshot(path: str):
    """``(database, envelope)`` from a binary snapshot file."""
    from repro.engine.codec import decode_snapshot

    return decode_snapshot(read_bytes(path))


def read_bytes(path: str) -> bytes:
    try:
        with open(path, "rb") as handle:
            return handle.read()
    except FileNotFoundError:
        raise StorageError("no such database file: {}".format(path)) from None
    except OSError as exc:
        raise StorageError("cannot read {}: {}".format(path, exc)) from None


def save_database(database, path: str, extra: Optional[Dict[str, Any]] = None) -> None:
    """Write the database to ``path`` crash-safely (temp file in the
    same directory + fsync + ``os.replace``).  ``extra`` keys are merged
    into the payload top level — the server's recovery manager stamps
    its checkpoint generation this way; :func:`database_from_dict`
    ignores keys it does not know."""
    payload = database_to_dict(database)
    if extra:
        payload.update(extra)
    try:
        write_json_atomic(path, payload)
    except OSError as exc:
        raise StorageError("cannot write {}: {}".format(path, exc)) from exc


def load_database(path: str):
    return database_from_dict(read_payload(path))


def read_payload(path: str) -> Dict[str, Any]:
    """The raw JSON payload of a saved database (recovery reads this
    directly to see checkpoint stamps before rebuilding objects)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise StorageError("no such database file: {}".format(path)) from None
    except json.JSONDecodeError as exc:
        raise StorageError("corrupt database file {}: {}".format(path, exc)) from None
    except OSError as exc:
        raise StorageError("cannot read {}: {}".format(path, exc)) from None
