"""JSON persistence for whole databases.

The format is versioned and human-readable: hierarchies serialise as
node lists in insertion order (each with its parents and an instance
flag) plus preference edges; relations serialise as attribute bindings
plus signed tuples.  ``load_database(save_database(db))`` round-trips
everything, including preemption strategies.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

from repro.core.preemption import STRATEGIES
from repro.errors import StorageError
from repro.hierarchy.graph import Hierarchy

FORMAT_NAME = "repro-db"
FORMAT_VERSION = 1


def database_to_dict(database) -> Dict[str, Any]:
    """The serialisable form of a database."""
    hierarchies = []
    for hierarchy in database.hierarchies.values():
        nodes = []
        for node in hierarchy.nodes():
            if node == hierarchy.root:
                continue
            nodes.append(
                {
                    "name": node,
                    "parents": sorted(hierarchy.parents(node)),
                    "instance": hierarchy.is_instance(node),
                }
            )
        hierarchies.append(
            {
                "name": hierarchy.name,
                "root": hierarchy.root,
                "nodes": nodes,
                "preference_edges": [
                    list(edge) for edge in hierarchy.preference_edges()
                ],
            }
        )
    relations = []
    for relation in database.relations.values():
        relations.append(
            {
                "name": relation.name,
                "strategy": relation.strategy.name,
                "attributes": [
                    [attr, h.name]
                    for attr, h in zip(
                        relation.schema.attributes, relation.schema.hierarchies
                    )
                ],
                "tuples": [[list(t.item), t.truth] for t in relation.tuples()],
            }
        )
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": database.name,
        "hierarchies": hierarchies,
        "relations": relations,
    }


def database_from_dict(payload: Dict[str, Any]):
    """Rebuild a database from :func:`database_to_dict` output."""
    from repro.engine.database import HierarchicalDatabase

    if payload.get("format") != FORMAT_NAME:
        raise StorageError(
            "not a {} file (format={!r})".format(FORMAT_NAME, payload.get("format"))
        )
    if payload.get("version") != FORMAT_VERSION:
        raise StorageError(
            "unsupported format version {!r} (supported: {})".format(
                payload.get("version"), FORMAT_VERSION
            )
        )
    database = HierarchicalDatabase(payload.get("name", "db"))
    for spec in payload.get("hierarchies", ()):
        hierarchy = Hierarchy(spec["name"], root=spec.get("root"))
        # Nodes are stored in insertion order, so parents always precede
        # children; first parent creates the node, the rest become edges.
        for node in spec.get("nodes", ()):
            parents = node.get("parents") or [hierarchy.root]
            if node.get("instance"):
                hierarchy.add_instance(node["name"], parents=parents[:1])
            else:
                hierarchy.add_class(node["name"], parents=parents[:1])
            for parent in parents[1:]:
                hierarchy.add_edge(parent, node["name"])
        for weaker, stronger in spec.get("preference_edges", ()):
            hierarchy.add_preference_edge(weaker, stronger)
        database.register_hierarchy(hierarchy)
    for spec in payload.get("relations", ()):
        strategy_name = spec.get("strategy", "off-path")
        if strategy_name not in STRATEGIES:
            raise StorageError("unknown preemption strategy {!r}".format(strategy_name))
        relation = database.create_relation(
            spec["name"],
            [(attr, hier) for attr, hier in spec["attributes"]],
            strategy=STRATEGIES[strategy_name],
        )
        for item, truth in spec.get("tuples", ()):
            relation.assert_item(tuple(item), truth=bool(truth))
    return database


def save_database(database, path: str) -> None:
    """Write the database to ``path`` atomically (write + rename)."""
    payload = database_to_dict(database)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    os.replace(tmp_path, path)


def load_database(path: str):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise StorageError("no such database file: {}".format(path)) from None
    except json.JSONDecodeError as exc:
        raise StorageError("corrupt database file {}: {}".format(path, exc)) from None
    return database_from_dict(payload)
