"""Tokeniser for HQL.

Token types: ``IDENT`` (bare words, including number-like values such as
``3000``), ``STRING`` (single- or double-quoted, for names with spaces
or file paths), and the punctuation ``( ) , ; : =``.  Keywords are plain
idents — the parser decides keyword-ness case-insensitively, so
``select`` and ``SELECT`` are the same verb while attribute and node
names stay case-sensitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import HQLSyntaxError

PUNCTUATION = {
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    ";": "SEMI",
    ":": "COLON",
    "=": "EQ",
    "*": "STAR",
}


@dataclass(frozen=True)
class Token:
    type: str
    value: str
    line: int
    column: int

    def keyword(self) -> str:
        """The uppercase form used for keyword matching."""
        return self.value.upper() if self.type == "IDENT" else self.type

    def __str__(self) -> str:
        return "{}({!r})".format(self.type, self.value)


def _ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_-."


def tokenize(text: str) -> List[Token]:
    """Tokenise ``text``; raises :class:`HQLSyntaxError` on junk."""
    out: List[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch.isspace():
            column += 1
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":
            # comment to end of line
            while i < length and text[i] != "\n":
                i += 1
            continue
        if text[i : i + 2] in ("!=", "<>"):
            out.append(Token("NEQ", text[i : i + 2], line, column))
            i += 2
            column += 2
            continue
        if ch in PUNCTUATION:
            out.append(Token(PUNCTUATION[ch], ch, line, column))
            i += 1
            column += 1
            continue
        if ch in "'\"":
            quote = ch
            start_line, start_column = line, column
            i += 1
            column += 1
            chars: List[str] = []
            while i < length and text[i] != quote:
                if text[i] == "\n":
                    raise HQLSyntaxError("unterminated string", start_line, start_column)
                chars.append(text[i])
                i += 1
                column += 1
            if i >= length:
                raise HQLSyntaxError("unterminated string", start_line, start_column)
            i += 1
            column += 1
            out.append(Token("STRING", "".join(chars), start_line, start_column))
            continue
        if _ident_char(ch):
            start_column = column
            chars = []
            while i < length and _ident_char(text[i]):
                chars.append(text[i])
                i += 1
                column += 1
            out.append(Token("IDENT", "".join(chars), line, start_column))
            continue
        raise HQLSyntaxError("unexpected character {!r}".format(ch), line, column)
    out.append(Token("EOF", "", line, column))
    return out
