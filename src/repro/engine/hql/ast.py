"""HQL abstract syntax: one dataclass per statement kind."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


class Statement:
    """Marker base class for all HQL statements."""


class WhereExpr:
    """Marker base class for WHERE expressions."""


@dataclass(frozen=True)
class WhereTest(WhereExpr):
    """``attr = value`` (membership in the value's cone) or, negated,
    ``attr != value``."""

    attribute: str
    value: str
    negated: bool = False


@dataclass(frozen=True)
class WhereAnd(WhereExpr):
    parts: Tuple[WhereExpr, ...]


@dataclass(frozen=True)
class WhereOr(WhereExpr):
    parts: Tuple[WhereExpr, ...]


@dataclass(frozen=True)
class WhereNot(WhereExpr):
    part: WhereExpr


def conjunction(pairs) -> Optional[WhereExpr]:
    """Build the WHERE tree for plain ``a = x AND b = y`` conditions."""
    tests: List[WhereExpr] = [WhereTest(a, v) for a, v in pairs]
    if not tests:
        return None
    if len(tests) == 1:
        return tests[0]
    return WhereAnd(tuple(tests))


@dataclass(frozen=True)
class CreateHierarchy(Statement):
    name: str
    root: Optional[str] = None


@dataclass(frozen=True)
class CreateNode(Statement):
    """CREATE CLASS / CREATE INSTANCE ... IN hierarchy [UNDER parents]."""

    name: str
    hierarchy: str
    parents: Tuple[str, ...] = ()
    instance: bool = False


@dataclass(frozen=True)
class Prefer(Statement):
    """PREFER stronger OVER weaker IN hierarchy."""

    stronger: str
    weaker: str
    hierarchy: str


@dataclass(frozen=True)
class CreateRelation(Statement):
    name: str
    attributes: Tuple[Tuple[str, str], ...]
    strategy: Optional[str] = None


@dataclass(frozen=True)
class Assert(Statement):
    relation: str
    values: Tuple[str, ...]
    truth: bool = True


@dataclass(frozen=True)
class Retract(Statement):
    relation: str
    values: Tuple[str, ...]


@dataclass(frozen=True)
class Truth(Statement):
    relation: str
    values: Tuple[str, ...]


@dataclass(frozen=True)
class Justify(Statement):
    relation: str
    values: Tuple[str, ...]


@dataclass(frozen=True)
class Select(Statement):
    """``SELECT [attrs | *] FROM rel [WHERE expr] [LIMIT n [OFFSET m]]
    [AS name]`` — an empty ``attributes`` tuple (or ``*``) keeps every
    attribute.  ``limit``/``offset`` slice the *stored-tuple* result in
    insertion order before rendering (and before aliasing)."""

    relation: str
    where: Optional[WhereExpr] = None
    alias: Optional[str] = None
    attributes: Tuple[str, ...] = ()
    limit: Optional[int] = None
    offset: int = 0


@dataclass(frozen=True)
class Project(Statement):
    relation: str
    attributes: Tuple[str, ...]
    alias: Optional[str] = None
    limit: Optional[int] = None
    offset: int = 0


@dataclass(frozen=True)
class BinaryOp(Statement):
    """JOIN / UNION / INTERSECT / DIFFERENCE left WITH right
    [LIMIT n [OFFSET m]] [AS alias]."""

    op: str
    left: str
    right: str
    alias: Optional[str] = None
    limit: Optional[int] = None
    offset: int = 0


@dataclass(frozen=True)
class Consolidate(Statement):
    relation: str
    alias: Optional[str] = None


@dataclass(frozen=True)
class Explicate(Statement):
    relation: str
    attributes: Tuple[str, ...] = ()
    alias: Optional[str] = None


@dataclass(frozen=True)
class Conflicts(Statement):
    relation: str


@dataclass(frozen=True)
class Extension(Statement):
    relation: str


@dataclass(frozen=True)
class Show(Statement):
    what: str  # "RELATIONS" | "HIERARCHIES"


@dataclass(frozen=True)
class Begin(Statement):
    pass


@dataclass(frozen=True)
class Commit(Statement):
    pass


@dataclass(frozen=True)
class Rollback(Statement):
    pass


@dataclass(frozen=True)
class Drop(Statement):
    kind: str  # "RELATION" | "HIERARCHY"
    name: str


@dataclass(frozen=True)
class Count(Statement):
    """COUNT rel [WHERE expr] — extension size (section 3.3.2's
    motivating statistical operation)."""

    relation: str
    where: Optional[WhereExpr] = None


@dataclass(frozen=True)
class Save(Statement):
    path: str


@dataclass(frozen=True)
class Load(Statement):
    path: str


@dataclass(frozen=True)
class Explain(Statement):
    """EXPLAIN <query>: run the query and report how — inputs, binding
    strategy and path, meet-closure candidate count, result size.

    ``EXPLAIN ANALYZE`` additionally executes the query with tracing
    forced on and appends the per-operator span tree (wall time, tuple
    counts, cache / zero-copy / fused status)."""

    inner: Statement
    analyze: bool = False


@dataclass(frozen=True)
class Stats(Statement):
    """STATS; — render the live metrics registries (the database's
    engine metrics plus the process-global core-layer registry)."""


@dataclass(frozen=True)
class Set(Statement):
    """SET <option> <value>; — session/process configuration.

    ``SET PARALLEL n`` fixes the shard-parallel worker count (0 turns
    parallel execution off); ``SET PLANNER ON|OFF`` toggles the
    cost-based planner (OFF restores the legacy fixed gates).  Not a
    mutating statement: it changes how queries run, never what they
    answer, so the operation log skips it.
    """

    option: str
    value: str


def _quote(name: str) -> str:
    """Quote a name for HQL output when it is not a bare identifier."""
    if name and all(ch.isalnum() or ch in "_-." for ch in name):
        return name
    return "'{}'".format(name)


def _limit_to_hql(statement) -> str:
    """The `` LIMIT n [OFFSET m]`` suffix of a sliceable statement
    (empty when no limit/offset is set)."""
    if statement.limit is None and not statement.offset:
        return ""
    text = " LIMIT {}".format("ALL" if statement.limit is None else statement.limit)
    if statement.offset:
        text += " OFFSET {}".format(statement.offset)
    return text


def where_to_hql(expr: WhereExpr) -> str:
    """Render a WHERE expression (fully parenthesised for compounds, so
    the round-trip never depends on precedence)."""
    if isinstance(expr, WhereTest):
        return "{} {} {}".format(
            _quote(expr.attribute), "!=" if expr.negated else "=", _quote(expr.value)
        )
    if isinstance(expr, WhereAnd):
        return "(" + " AND ".join(where_to_hql(p) for p in expr.parts) + ")"
    if isinstance(expr, WhereOr):
        return "(" + " OR ".join(where_to_hql(p) for p in expr.parts) + ")"
    if isinstance(expr, WhereNot):
        return "NOT {}".format(where_to_hql(expr.part))
    raise TypeError("no HQL rendering for {}".format(type(expr).__name__))


def to_hql(statement: Statement) -> str:
    """Render a statement back to HQL text (used by the operation log;
    ``parse(to_hql(s)) == [s]`` for every statement kind)."""
    if isinstance(statement, CreateHierarchy):
        text = "CREATE HIERARCHY {}".format(_quote(statement.name))
        if statement.root:
            text += " ROOT {}".format(_quote(statement.root))
        return text + ";"
    if isinstance(statement, CreateNode):
        text = "CREATE {} {} IN {}".format(
            "INSTANCE" if statement.instance else "CLASS",
            _quote(statement.name),
            _quote(statement.hierarchy),
        )
        if statement.parents:
            text += " UNDER {}".format(", ".join(_quote(p) for p in statement.parents))
        return text + ";"
    if isinstance(statement, Prefer):
        return "PREFER {} OVER {} IN {};".format(
            _quote(statement.stronger), _quote(statement.weaker), _quote(statement.hierarchy)
        )
    if isinstance(statement, CreateRelation):
        text = "CREATE RELATION {} ({})".format(
            _quote(statement.name),
            ", ".join("{}: {}".format(_quote(a), _quote(h)) for a, h in statement.attributes),
        )
        if statement.strategy:
            text += " WITH STRATEGY '{}'".format(statement.strategy)
        return text + ";"
    if isinstance(statement, Assert):
        return "ASSERT {}{} ({});".format(
            "" if statement.truth else "NOT ",
            _quote(statement.relation),
            ", ".join(_quote(v) for v in statement.values),
        )
    if isinstance(statement, Retract):
        return "RETRACT {} ({});".format(
            _quote(statement.relation), ", ".join(_quote(v) for v in statement.values)
        )
    if isinstance(statement, Truth):
        return "TRUTH {} ({});".format(
            _quote(statement.relation), ", ".join(_quote(v) for v in statement.values)
        )
    if isinstance(statement, Justify):
        return "JUSTIFY {} ({});".format(
            _quote(statement.relation), ", ".join(_quote(v) for v in statement.values)
        )
    if isinstance(statement, Select):
        if statement.attributes:
            text = "SELECT {} FROM {}".format(
                ", ".join(_quote(a) for a in statement.attributes),
                _quote(statement.relation),
            )
        else:
            text = "SELECT FROM {}".format(_quote(statement.relation))
        if statement.where is not None:
            text += " WHERE {}".format(where_to_hql(statement.where))
        text += _limit_to_hql(statement)
        if statement.alias:
            text += " AS {}".format(_quote(statement.alias))
        return text + ";"
    if isinstance(statement, Project):
        text = "PROJECT {} ON {}".format(
            _quote(statement.relation), ", ".join(_quote(a) for a in statement.attributes)
        )
        text += _limit_to_hql(statement)
        if statement.alias:
            text += " AS {}".format(_quote(statement.alias))
        return text + ";"
    if isinstance(statement, BinaryOp):
        text = "{} {} WITH {}".format(
            statement.op, _quote(statement.left), _quote(statement.right)
        )
        text += _limit_to_hql(statement)
        if statement.alias:
            text += " AS {}".format(_quote(statement.alias))
        return text + ";"
    if isinstance(statement, Consolidate):
        text = "CONSOLIDATE {}".format(_quote(statement.relation))
        if statement.alias:
            text += " AS {}".format(_quote(statement.alias))
        return text + ";"
    if isinstance(statement, Explicate):
        text = "EXPLICATE {}".format(_quote(statement.relation))
        if statement.attributes:
            text += " ON {}".format(", ".join(_quote(a) for a in statement.attributes))
        if statement.alias:
            text += " AS {}".format(_quote(statement.alias))
        return text + ";"
    if isinstance(statement, Conflicts):
        return "CONFLICTS {};".format(_quote(statement.relation))
    if isinstance(statement, Extension):
        return "EXTENSION {};".format(_quote(statement.relation))
    if isinstance(statement, Count):
        text = "COUNT {}".format(_quote(statement.relation))
        if statement.where is not None:
            text += " WHERE {}".format(where_to_hql(statement.where))
        return text + ";"
    if isinstance(statement, Show):
        return "SHOW {};".format(statement.what)
    if isinstance(statement, Begin):
        return "BEGIN;"
    if isinstance(statement, Commit):
        return "COMMIT;"
    if isinstance(statement, Rollback):
        return "ROLLBACK;"
    if isinstance(statement, Drop):
        return "DROP {} {};".format(statement.kind, _quote(statement.name))
    if isinstance(statement, Save):
        return "SAVE '{}';".format(statement.path)
    if isinstance(statement, Load):
        return "LOAD '{}';".format(statement.path)
    if isinstance(statement, Explain):
        return (
            "EXPLAIN ANALYZE " if statement.analyze else "EXPLAIN "
        ) + to_hql(statement.inner)
    if isinstance(statement, Stats):
        return "STATS;"
    if isinstance(statement, Set):
        return "SET {} {};".format(statement.option, _quote(statement.value))
    raise TypeError("no HQL rendering for {}".format(type(statement).__name__))


#: Statement kinds that mutate the database (the operation log records
#: these and only these).
MUTATING = (
    CreateHierarchy,
    CreateNode,
    Prefer,
    CreateRelation,
    Assert,
    Retract,
    Consolidate,
    Explicate,
    Drop,
)
