"""HQL — a small statement language over the hierarchical model.

One statement per ``;``.  The verbs map one-to-one onto the model's
operations:

.. code-block:: text

    CREATE HIERARCHY animal;
    CREATE CLASS bird IN animal;
    CREATE CLASS penguin IN animal UNDER bird;
    CREATE INSTANCE tweety IN animal UNDER bird;
    PREFER royal OVER indian IN animal;
    CREATE RELATION flies (creature: animal);
    CREATE RELATION sizes (animal: animal, size: size) WITH STRATEGY 'on-path';
    ASSERT flies (bird);
    ASSERT NOT flies (penguin);
    RETRACT flies (penguin);
    TRUTH flies (tweety);
    JUSTIFY flies (tweety);
    SELECT FROM flies WHERE creature = penguin AS penguin_flyers;
    PROJECT sizes ON animal AS housed;
    JOIN sizes WITH flies AS both;
    UNION a WITH b AS c;          -- also INTERSECT / DIFFERENCE
    CONSOLIDATE flies;            -- in place; AS name writes a copy
    EXPLICATE flies ON creature AS flat_flies;
    CONFLICTS flies;
    EXTENSION flies;
    SHOW RELATIONS;  SHOW HIERARCHIES;
    BEGIN;  ...  COMMIT;  ROLLBACK;
    DROP RELATION flies;  DROP HIERARCHY animal;
    SAVE 'zoo.json';

Use :func:`execute` for one-shot scripts or :class:`HQLExecutor` to keep
a session (open transactions) across calls.
"""

from repro.engine.hql import ast
from repro.engine.hql.executor import HQLExecutor, Result, execute
from repro.engine.hql.lexer import tokenize, Token
from repro.engine.hql.parser import parse

__all__ = [
    "tokenize",
    "Token",
    "parse",
    "ast",
    "HQLExecutor",
    "Result",
    "execute",
]
