"""Recursive-descent parser for HQL.

``parse(text)`` returns a list of :mod:`~repro.engine.hql.ast`
statements; all errors are :class:`~repro.errors.HQLSyntaxError` with a
line/column position.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.hql import ast
from repro.engine.hql.lexer import Token, tokenize
from repro.errors import HQLSyntaxError

_BINARY_OPS = {"JOIN", "UNION", "INTERSECT", "DIFFERENCE", "DIVIDE", "SEMIJOIN", "ANTIJOIN"}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type != "EOF":
            self._pos += 1
        return token

    def _error(self, message: str) -> HQLSyntaxError:
        token = self._peek()
        return HQLSyntaxError(message, token.line, token.column)

    def _at_keyword(self, *keywords: str) -> bool:
        return self._peek().keyword() in keywords

    def _expect_keyword(self, keyword: str) -> Token:
        if not self._at_keyword(keyword):
            raise self._error(
                "expected {!r}, found {!r}".format(keyword, self._peek().value)
            )
        return self._advance()

    def _accept_keyword(self, keyword: str) -> bool:
        if self._at_keyword(keyword):
            self._advance()
            return True
        return False

    def _expect_type(self, token_type: str) -> Token:
        if self._peek().type != token_type:
            raise self._error(
                "expected {}, found {!r}".format(token_type, self._peek().value)
            )
        return self._advance()

    def _name(self) -> str:
        """An identifier or quoted string used as a name/value."""
        token = self._peek()
        if token.type in ("IDENT", "STRING"):
            self._advance()
            return token.value
        raise self._error("expected a name, found {!r}".format(token.value))

    def _name_list(self) -> Tuple[str, ...]:
        names = [self._name()]
        while self._peek().type == "COMMA":
            self._advance()
            names.append(self._name())
        return tuple(names)

    def _values_in_parens(self) -> Tuple[str, ...]:
        self._expect_type("LPAREN")
        values = self._name_list()
        self._expect_type("RPAREN")
        return values

    def _optional_alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            return self._name()
        return None

    def _nonnegative_int(self, what: str) -> int:
        """A number after LIMIT/OFFSET.  Numbers lex as IDENT tokens
        (bare words), so validation happens here."""
        token = self._peek()
        if token.type != "IDENT" or not token.value.isdigit():
            raise self._error(
                "expected a non-negative integer after {}, found {!r}".format(
                    what, token.value
                )
            )
        self._advance()
        return int(token.value)

    def _limit_clause(self) -> Tuple[Optional[int], int]:
        """``[LIMIT n|ALL [OFFSET m]]`` — ``(limit, offset)``, with
        ``None`` for no/ALL limit."""
        limit: Optional[int] = None
        offset = 0
        if self._accept_keyword("LIMIT"):
            if not self._accept_keyword("ALL"):
                limit = self._nonnegative_int("LIMIT")
            if self._accept_keyword("OFFSET"):
                offset = self._nonnegative_int("OFFSET")
        return limit, offset

    def _end_statement(self) -> None:
        if self._peek().type == "SEMI":
            self._advance()
        elif self._peek().type != "EOF":
            raise self._error(
                "expected ';' or end of input, found {!r}".format(self._peek().value)
            )

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def parse(self) -> List[ast.Statement]:
        statements: List[ast.Statement] = []
        while self._peek().type != "EOF":
            if self._peek().type == "SEMI":  # empty statement
                self._advance()
                continue
            statements.append(self._statement())
            self._end_statement()
        return statements

    def _statement(self) -> ast.Statement:
        keyword = self._peek().keyword()
        handler = {
            "CREATE": self._create,
            "PREFER": self._prefer,
            "ASSERT": self._assert,
            "RETRACT": self._retract,
            "TRUTH": self._truth,
            "JUSTIFY": self._justify,
            "SELECT": self._select,
            "PROJECT": self._project,
            "CONSOLIDATE": self._consolidate,
            "EXPLICATE": self._explicate,
            "CONFLICTS": self._conflicts,
            "EXTENSION": self._extension,
            "COUNT": self._count,
            "LOAD": self._load,
            "EXPLAIN": self._explain,
            "STATS": self._stats,
            "SET": self._set,
            "SHOW": self._show,
            "BEGIN": self._begin,
            "COMMIT": self._commit,
            "ROLLBACK": self._rollback,
            "DROP": self._drop,
            "SAVE": self._save,
        }.get(keyword)
        if handler is not None:
            return handler()
        if keyword in _BINARY_OPS:
            return self._binary_op()
        raise self._error("unknown statement {!r}".format(self._peek().value))

    def _create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        if self._accept_keyword("HIERARCHY"):
            name = self._name()
            root = self._name() if self._accept_keyword("ROOT") else None
            return ast.CreateHierarchy(name=name, root=root)
        if self._at_keyword("CLASS", "INSTANCE"):
            instance = self._advance().keyword() == "INSTANCE"
            name = self._name()
            self._expect_keyword("IN")
            hierarchy = self._name()
            parents: Tuple[str, ...] = ()
            if self._accept_keyword("UNDER"):
                parents = self._name_list()
            return ast.CreateNode(
                name=name, hierarchy=hierarchy, parents=parents, instance=instance
            )
        if self._accept_keyword("RELATION"):
            name = self._name()
            self._expect_type("LPAREN")
            attributes = []
            while True:
                attr = self._name()
                self._expect_type("COLON")
                hier = self._name()
                attributes.append((attr, hier))
                if self._peek().type == "COMMA":
                    self._advance()
                    continue
                break
            self._expect_type("RPAREN")
            strategy = None
            if self._accept_keyword("WITH"):
                self._expect_keyword("STRATEGY")
                strategy = self._name()
            return ast.CreateRelation(
                name=name, attributes=tuple(attributes), strategy=strategy
            )
        raise self._error("expected HIERARCHY, CLASS, INSTANCE, or RELATION")

    def _prefer(self) -> ast.Statement:
        self._expect_keyword("PREFER")
        stronger = self._name()
        self._expect_keyword("OVER")
        weaker = self._name()
        self._expect_keyword("IN")
        hierarchy = self._name()
        return ast.Prefer(stronger=stronger, weaker=weaker, hierarchy=hierarchy)

    def _assert(self) -> ast.Statement:
        self._expect_keyword("ASSERT")
        truth = not self._accept_keyword("NOT")
        relation = self._name()
        values = self._values_in_parens()
        return ast.Assert(relation=relation, values=values, truth=truth)

    def _retract(self) -> ast.Statement:
        self._expect_keyword("RETRACT")
        relation = self._name()
        return ast.Retract(relation=relation, values=self._values_in_parens())

    def _truth(self) -> ast.Statement:
        self._expect_keyword("TRUTH")
        relation = self._name()
        return ast.Truth(relation=relation, values=self._values_in_parens())

    def _justify(self) -> ast.Statement:
        self._expect_keyword("JUSTIFY")
        relation = self._name()
        return ast.Justify(relation=relation, values=self._values_in_parens())

    def _select(self) -> ast.Statement:
        self._expect_keyword("SELECT")
        attributes: Tuple[str, ...] = ()
        if not self._accept_keyword("FROM"):
            # Optional projection list (or *) before FROM.
            if self._peek().type == "STAR":
                self._advance()
            else:
                attributes = self._name_list()
            self._expect_keyword("FROM")
        relation = self._name()
        where = self._where_expr() if self._accept_keyword("WHERE") else None
        limit, offset = self._limit_clause()
        alias = self._optional_alias()
        return ast.Select(
            relation=relation,
            where=where,
            alias=alias,
            attributes=attributes,
            limit=limit,
            offset=offset,
        )

    # WHERE grammar (loosest to tightest): OR, AND, NOT, then a
    # parenthesised expression or an ``attr = value`` / ``attr != value``
    # test.
    def _where_expr(self) -> ast.WhereExpr:
        parts = [self._where_and()]
        while self._accept_keyword("OR"):
            parts.append(self._where_and())
        return parts[0] if len(parts) == 1 else ast.WhereOr(tuple(parts))

    def _where_and(self) -> ast.WhereExpr:
        parts = [self._where_unary()]
        while self._accept_keyword("AND"):
            parts.append(self._where_unary())
        return parts[0] if len(parts) == 1 else ast.WhereAnd(tuple(parts))

    def _where_unary(self) -> ast.WhereExpr:
        if self._accept_keyword("NOT"):
            return ast.WhereNot(self._where_unary())
        if self._peek().type == "LPAREN":
            self._advance()
            inner = self._where_expr()
            self._expect_type("RPAREN")
            return inner
        attr = self._name()
        if self._peek().type == "NEQ":
            self._advance()
            return ast.WhereTest(attr, self._name(), negated=True)
        self._expect_type("EQ")
        return ast.WhereTest(attr, self._name())

    def _project(self) -> ast.Statement:
        self._expect_keyword("PROJECT")
        relation = self._name()
        self._expect_keyword("ON")
        attributes = self._name_list()
        limit, offset = self._limit_clause()
        return ast.Project(
            relation=relation,
            attributes=attributes,
            limit=limit,
            offset=offset,
            alias=self._optional_alias(),
        )

    def _binary_op(self) -> ast.Statement:
        op = self._advance().keyword()
        left = self._name()
        self._expect_keyword("WITH")
        right = self._name()
        limit, offset = self._limit_clause()
        return ast.BinaryOp(
            op=op,
            left=left,
            right=right,
            limit=limit,
            offset=offset,
            alias=self._optional_alias(),
        )

    def _consolidate(self) -> ast.Statement:
        self._expect_keyword("CONSOLIDATE")
        relation = self._name()
        return ast.Consolidate(relation=relation, alias=self._optional_alias())

    def _explicate(self) -> ast.Statement:
        self._expect_keyword("EXPLICATE")
        relation = self._name()
        attributes: Tuple[str, ...] = ()
        if self._accept_keyword("ON"):
            attributes = self._name_list()
        return ast.Explicate(
            relation=relation, attributes=attributes, alias=self._optional_alias()
        )

    def _conflicts(self) -> ast.Statement:
        self._expect_keyword("CONFLICTS")
        return ast.Conflicts(relation=self._name())

    def _extension(self) -> ast.Statement:
        self._expect_keyword("EXTENSION")
        return ast.Extension(relation=self._name())

    def _show(self) -> ast.Statement:
        self._expect_keyword("SHOW")
        if self._accept_keyword("RELATIONS"):
            return ast.Show(what="RELATIONS")
        if self._accept_keyword("HIERARCHIES"):
            return ast.Show(what="HIERARCHIES")
        raise self._error("expected RELATIONS or HIERARCHIES")

    def _begin(self) -> ast.Statement:
        self._expect_keyword("BEGIN")
        return ast.Begin()

    def _commit(self) -> ast.Statement:
        self._expect_keyword("COMMIT")
        return ast.Commit()

    def _rollback(self) -> ast.Statement:
        self._expect_keyword("ROLLBACK")
        return ast.Rollback()

    def _drop(self) -> ast.Statement:
        self._expect_keyword("DROP")
        if self._accept_keyword("RELATION"):
            return ast.Drop(kind="RELATION", name=self._name())
        if self._accept_keyword("HIERARCHY"):
            return ast.Drop(kind="HIERARCHY", name=self._name())
        raise self._error("expected RELATION or HIERARCHY")

    def _count(self) -> ast.Statement:
        self._expect_keyword("COUNT")
        relation = self._name()
        where = self._where_expr() if self._accept_keyword("WHERE") else None
        return ast.Count(relation=relation, where=where)

    def _save(self) -> ast.Statement:
        self._expect_keyword("SAVE")
        return ast.Save(path=self._name())

    def _load(self) -> ast.Statement:
        self._expect_keyword("LOAD")
        return ast.Load(path=self._name())

    def _explain(self) -> ast.Statement:
        self._expect_keyword("EXPLAIN")
        analyze = self._accept_keyword("ANALYZE")
        inner = self._statement()
        if not isinstance(
            inner, (ast.Select, ast.Count, ast.Project, ast.BinaryOp)
        ):
            raise self._error(
                "EXPLAIN supports SELECT, COUNT, PROJECT, and the binary operators"
            )
        return ast.Explain(inner=inner, analyze=analyze)

    def _stats(self) -> ast.Statement:
        self._expect_keyword("STATS")
        return ast.Stats()

    def _set(self) -> ast.Statement:
        self._expect_keyword("SET")
        option = self._name().upper()
        return ast.Set(option=option, value=self._name())


def parse(text: str) -> List[ast.Statement]:
    """Parse an HQL script into a statement list."""
    return _Parser(tokenize(text)).parse()
