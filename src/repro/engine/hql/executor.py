"""HQL execution against a :class:`HierarchicalDatabase`.

An :class:`HQLExecutor` holds a session: statements between ``BEGIN``
and ``COMMIT``/``ROLLBACK`` stage their writes in one transaction;
outside a transaction each DML statement auto-commits (and is therefore
individually subject to the ambiguity constraint).

Every statement yields a :class:`Result` with a ``kind``, a ``payload``
(relation, bool, justification, …) and a rendered ``message``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional, Tuple

from repro.core import algebra, bulk
from repro.core.binding import justify as _justify
from repro.core.conflicts import find_conflicts
from repro.core.relation import HRelation
from repro.engine.hql import ast
from repro.engine.hql.parser import parse
from repro.engine.querycache import MISS, cache_key, key_source_names
from repro.errors import HQLError
from repro.obs import Span, default_registry, render_span_tree
from repro.obs import trace as _trace
from repro.render.table import render_justification, render_relation, render_rows


class Result:
    """The outcome of one HQL statement.

    ``message`` is the human-readable rendering.  Statements with large
    relation payloads pass a ``render`` callable instead of an eager
    string: the table is built on first read of ``message`` (and cached),
    so programmatic callers — the query-result cache's steady-state hit
    path above all — never pay for ASCII art they do not look at.
    """

    def __init__(
        self,
        kind: str,
        payload: Any = None,
        message: str = "",
        render: Optional[Callable[[], str]] = None,
    ) -> None:
        self.kind = kind
        self.payload = payload
        self._message = message
        self._render = render
        #: Wall time of the statement that produced this result, stamped
        #: by the executor's timing span — the same number EXPLAIN and
        #: the slow-query log see (``None`` for results built by hand).
        self.elapsed_ms: Optional[float] = None

    @property
    def message(self) -> str:
        if self._render is not None:
            self._message = self._render()
            self._render = None
        return self._message

    def __str__(self) -> str:
        return self.message or "{}: {!r}".format(self.kind, self.payload)

    def __repr__(self) -> str:
        return "Result(kind={!r}, payload={!r})".format(self.kind, self.payload)


class HQLExecutor:
    """A stateful HQL session over one database.

    ``log`` optionally attaches an
    :class:`~repro.engine.oplog.OperationLog`: every successfully
    executed mutating statement is appended (transaction bodies only on
    COMMIT), so replaying the log rebuilds the database.
    """

    def __init__(self, database, log=None, on_journal=None) -> None:
        self.database = database
        self.log = log
        #: Called with each statement right after it is journalled (the
        #: server's recovery manager counts these to pace snapshots).
        self.on_journal = on_journal
        self._transaction = None
        self._pending_log: List[ast.Statement] = []

    # ------------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        """True while a ``BEGIN`` block is open on this session."""
        return self._transaction is not None

    def close(self) -> None:
        """End the session: roll back any open transaction and discard
        its pending journal entries (a network session that disconnects
        mid-transaction must leave no trace)."""
        if self._transaction is not None:
            try:
                self._transaction.rollback()
            finally:
                self._transaction = None
                self._pending_log = []

    def run(self, text: str) -> List[Result]:
        """Parse and execute a script; one :class:`Result` per statement."""
        return [self.execute_statement(stmt) for stmt in parse(text)]

    def execute_statement(self, statement: ast.Statement) -> Result:
        result, _elapsed_ms, _root = self._timed_execute(statement)
        return result

    def _dispatch(self, statement: ast.Statement) -> Result:
        handler = getattr(self, "_exec_{}".format(type(statement).__name__.lower()), None)
        if handler is None:
            raise HQLError("no executor for {}".format(type(statement).__name__))
        result = handler(statement)
        self._record(statement)
        return result

    def _timed_execute(
        self,
        statement: ast.Statement,
        record: bool = True,
        force_trace: bool = False,
    ) -> Tuple[Result, float, Optional[Span]]:
        """Execute one statement inside the single ``hql.statement``
        timing span.

        Every consumer of a statement's wall time — the REPL's
        ``\\timing``, ``EXPLAIN [ANALYZE]``, the slow-query log, the
        ``hql.statement.ms`` histogram — reads the number produced
        here, so they can never disagree.  Tracing is forced on when
        the caller asks (EXPLAIN ANALYZE) or when a slow-query log is
        attached (its entries carry the span tree); otherwise the span
        is the zero-cost noop unless tracing is globally enabled.

        ``record=False`` (EXPLAIN timing its inner query) skips the
        slow-query log and metrics so the wrapped run is not counted
        twice.
        """
        slowlog = getattr(self.database, "slow_query_log", None) if record else None
        kind = type(statement).__name__.lower()
        need_trace = force_trace or slowlog is not None
        started = time.perf_counter()
        if need_trace:
            with _trace.force(True):
                with _trace.span("hql.statement", kind=kind) as root:
                    result = self._dispatch(statement)
        else:
            with _trace.span("hql.statement", kind=kind) as root:
                result = self._dispatch(statement)
        if isinstance(root, Span):
            elapsed_ms = root.elapsed_ms
        else:
            root = None
            elapsed_ms = (time.perf_counter() - started) * 1e3
        result.elapsed_ms = elapsed_ms
        if record:
            metrics = getattr(self.database, "metrics", None)
            if metrics is not None:
                metrics.counter("hql.statements").inc()
                metrics.histogram("hql.statement.ms").observe(elapsed_ms)
        if slowlog is not None:
            slowlog.record(ast.to_hql(statement), elapsed_ms, root)
        return result, elapsed_ms, root

    def _record(self, statement: ast.Statement) -> None:
        if self.log is None or not isinstance(statement, ast.MUTATING):
            return
        if self._transaction is not None:
            self._pending_log.append(statement)
        else:
            self._journal_one(statement)

    def _journal_one(self, statement: ast.Statement) -> None:
        """The single journalling code path: append to the durable log
        *first*, then fire ``on_journal``.

        Every journalled write — autocommit and COMMIT alike — goes
        through here, so anything hanging off ``on_journal`` (the
        recovery manager's checkpoint pacing, the replication leader's
        ship offset, and therefore any ``WAIT_SYNC`` acknowledgement
        built on that offset) can only observe a statement *after*
        :meth:`~repro.engine.oplog.OperationLog.append` has written and
        flushed it (and fsynced it, when the log is configured to).  An
        entry can never be shipped to a follower, or acked to a
        ``WAIT_SYNC`` caller, before it is durably journalled locally.
        """
        self.log.append(statement)
        if self.on_journal is not None:
            self.on_journal(statement)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _relation(self, name: str):
        if self._transaction is not None:
            return self._transaction.relation(name)
        return self.database.relation(name)

    def _store(self, relation, alias: Optional[str]) -> Result:
        if alias:
            relation.name = alias
            if alias in self.database.relations:
                # Rebinding an existing name replaces the object; its
                # version counter restarts, so stamps alone cannot see
                # the swap and the cache must be told explicitly.
                self.database.relations[alias] = relation
                cache = self._query_cache()
                if cache is not None:
                    cache.invalidate_relation(alias)
            else:
                self.database.register_relation(relation)
        return Result(
            kind="relation",
            payload=relation,
            render=lambda: render_relation(relation),
        )

    # ------------------------------------------------------------------
    # query-result cache plumbing
    # ------------------------------------------------------------------

    def _query_cache(self):
        return getattr(self.database, "query_cache", None)

    def _where_fingerprint(self, where: Optional[ast.WhereExpr]) -> Optional[Tuple]:
        """A canonical hashable fingerprint of a WHERE tree (cache-key
        operand; two syntactically identical trees must collide)."""
        if where is None:
            return None
        if isinstance(where, ast.WhereTest):
            return ("test", where.attribute, where.value, bool(where.negated))
        if isinstance(where, ast.WhereAnd):
            return ("and",) + tuple(self._where_fingerprint(p) for p in where.parts)
        if isinstance(where, ast.WhereOr):
            return ("or",) + tuple(self._where_fingerprint(p) for p in where.parts)
        if isinstance(where, ast.WhereNot):
            return ("not", self._where_fingerprint(where.part))
        raise HQLError("unknown WHERE node {}".format(type(where).__name__))

    def _slice_fingerprint(self, stmt) -> Tuple:
        """The ``(limit, offset)`` cache-key operand of a sliceable
        statement — a LIMIT'd result must never be served for the
        unlimited key or vice versa."""
        return (stmt.limit, stmt.offset)

    @staticmethod
    def _apply_limit(relation, limit: Optional[int], offset: int):
        """Slice a result relation's stored tuples in insertion order.

        Runs inside ``compute`` so the *sliced* relation is what the
        query cache stores, and cursors can page server-side without
        shipping the full result.  A no-op slice returns the relation
        unchanged (no copy)."""
        if limit is None and not offset:
            return relation
        stop = None if limit is None else offset + limit
        sliced = relation.copy(name=relation.name)
        sliced.load_tuples(
            list(relation.asserted.items())[offset:stop],
            version=relation.version,
        )
        return sliced

    def _statement_cache_key(self, stmt: ast.Statement) -> Optional[Tuple]:
        """The cache key for a read-only statement, or ``None`` when the
        statement is uncacheable here — unknown shape, no cache on the
        database, or an open transaction (whose staged, uncommitted
        relations must never leak into the shared cache).

        EXPLAIN uses the same function, so the reported ``cache:`` line
        can never drift from what execution actually looks up.
        """
        if self._query_cache() is None or self._transaction is not None:
            return None
        if isinstance(stmt, ast.Select):
            return cache_key(
                "select",
                (
                    self._where_fingerprint(stmt.where),
                    tuple(stmt.attributes or ()),
                    self._slice_fingerprint(stmt),
                ),
                [self._relation(stmt.relation)],
            )
        if isinstance(stmt, ast.Project):
            return cache_key(
                "project",
                (tuple(stmt.attributes), self._slice_fingerprint(stmt)),
                [self._relation(stmt.relation)],
            )
        if isinstance(stmt, ast.BinaryOp):
            return cache_key(
                stmt.op,
                self._slice_fingerprint(stmt),
                [self._relation(stmt.left), self._relation(stmt.right)],
            )
        if isinstance(stmt, ast.Truth):
            return cache_key(
                "truth", tuple(stmt.values), [self._relation(stmt.relation)]
            )
        if isinstance(stmt, ast.Count):
            return cache_key(
                "count",
                (self._where_fingerprint(stmt.where),),
                [self._relation(stmt.relation)],
            )
        return None

    def _through_cache(self, key: Optional[Tuple], compute):
        """Serve ``compute()`` through the database's query cache.

        Relation payloads are stored as private copies and served as
        copies, so neither a later alias rebind nor a caller mutating
        the result can corrupt the cached entry.
        """
        cache = self._query_cache()
        if key is None or cache is None:
            return compute()
        hit = cache.get(key)
        if hit is not MISS:
            _trace.annotate(cache="hit")
            return hit.copy(name=hit.name) if isinstance(hit, HRelation) else hit
        _trace.annotate(cache="miss")
        started = time.perf_counter()
        result = compute()
        cost_ms = (time.perf_counter() - started) * 1e3
        payload = result.copy(name=result.name) if isinstance(result, HRelation) else result
        cache.put(key, payload, source_names=key_source_names(key), cost_ms=cost_ms)
        return result

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def _exec_createhierarchy(self, stmt: ast.CreateHierarchy) -> Result:
        self.database.create_hierarchy(stmt.name, root=stmt.root)
        return Result(kind="ok", message="hierarchy {} created".format(stmt.name))

    def _exec_createnode(self, stmt: ast.CreateNode) -> Result:
        hierarchy = self.database.hierarchy(stmt.hierarchy)
        parents = list(stmt.parents) or None
        if stmt.instance:
            hierarchy.add_instance(stmt.name, parents=parents)
        else:
            hierarchy.add_class(stmt.name, parents=parents)
        return Result(
            kind="ok",
            message="{} {} created in {}".format(
                "instance" if stmt.instance else "class", stmt.name, stmt.hierarchy
            ),
        )

    def _exec_prefer(self, stmt: ast.Prefer) -> Result:
        hierarchy = self.database.hierarchy(stmt.hierarchy)
        hierarchy.add_preference_edge(stmt.weaker, stmt.stronger)
        return Result(
            kind="ok",
            message="preference {} over {} in {}".format(
                stmt.stronger, stmt.weaker, stmt.hierarchy
            ),
        )

    def _exec_createrelation(self, stmt: ast.CreateRelation) -> Result:
        self.database.create_relation(
            stmt.name,
            list(stmt.attributes),
            strategy=stmt.strategy or "off-path",
        )
        return Result(kind="ok", message="relation {} created".format(stmt.name))

    def _exec_drop(self, stmt: ast.Drop) -> Result:
        if stmt.kind == "RELATION":
            self.database.drop_relation(stmt.name)
        else:
            self.database.drop_hierarchy(stmt.name)
        return Result(kind="ok", message="{} {} dropped".format(stmt.kind.lower(), stmt.name))

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _exec_assert(self, stmt: ast.Assert) -> Result:
        if self._transaction is not None:
            self._transaction.assert_item(stmt.relation, stmt.values, truth=stmt.truth)
        else:
            self.database.insert(stmt.relation, stmt.values, truth=stmt.truth)
        return Result(
            kind="ok",
            message="asserted {}({})".format(
                "" if stmt.truth else "NOT ", ", ".join(stmt.values)
            ),
        )

    def _exec_retract(self, stmt: ast.Retract) -> Result:
        if self._transaction is not None:
            self._transaction.retract(stmt.relation, stmt.values)
        else:
            self.database.delete(stmt.relation, stmt.values)
        return Result(kind="ok", message="retracted ({})".format(", ".join(stmt.values)))

    def _exec_begin(self, stmt: ast.Begin) -> Result:
        if self._transaction is not None:
            raise HQLError("transaction already open")
        self._transaction = self.database.transaction()
        return Result(kind="ok", message="transaction started")

    def _exec_commit(self, stmt: ast.Commit) -> Result:
        if self._transaction is None:
            raise HQLError("no open transaction")
        try:
            self._transaction.commit()
        finally:
            # Win or lose, this transaction is over: a failed commit
            # must not leave its statements behind to be journalled by
            # a later, unrelated commit.
            self._transaction = None
            pending, self._pending_log = self._pending_log, []
        if self.log is not None:
            for statement in pending:
                self._journal_one(statement)
        return Result(kind="ok", message="committed")

    def _exec_rollback(self, stmt: ast.Rollback) -> Result:
        if self._transaction is None:
            raise HQLError("no open transaction")
        self._transaction.rollback()
        self._transaction = None
        self._pending_log = []
        return Result(kind="ok", message="rolled back")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _exec_truth(self, stmt: ast.Truth) -> Result:
        # Sessions ask many TRUTHs of one relation; the bulk evaluator
        # amortises the subsumption sweep across them (it is cached on
        # the relation and refreshed only when a write moves a version),
        # and the query cache makes an exact repeat a dict lookup.
        value = self._through_cache(
            self._statement_cache_key(stmt),
            lambda: bulk.truth_of(self._relation(stmt.relation), stmt.values),
        )
        return Result(
            kind="truth",
            payload=value,
            message="({}) is {}".format(", ".join(stmt.values), str(value).lower()),
        )

    def _exec_justify(self, stmt: ast.Justify) -> Result:
        justification = _justify(self._relation(stmt.relation), tuple(stmt.values))
        return Result(
            kind="justification",
            payload=justification,
            message=render_justification(justification),
        )

    def _condition(self, where: ast.WhereExpr):
        from repro.core import where as conditions

        if isinstance(where, ast.WhereTest):
            test = conditions.member(where.attribute, where.value)
            return conditions.Not(test) if where.negated else test
        if isinstance(where, ast.WhereAnd):
            return conditions.And(*(self._condition(p) for p in where.parts))
        if isinstance(where, ast.WhereOr):
            return conditions.Or(*(self._condition(p) for p in where.parts))
        if isinstance(where, ast.WhereNot):
            return conditions.Not(self._condition(where.part))
        raise HQLError("unknown WHERE node {}".format(type(where).__name__))

    def _exec_select(self, stmt: ast.Select) -> Result:
        from repro.core.where import select_where

        def compute():
            relation = self._relation(stmt.relation)
            if stmt.where is None:
                result = relation.copy(name="{}_where".format(relation.name))
            else:
                result = select_where(relation, self._condition(stmt.where))
            if stmt.attributes:
                result = algebra.project(result, list(stmt.attributes))
            return self._apply_limit(result, stmt.limit, stmt.offset)

        result = self._through_cache(self._statement_cache_key(stmt), compute)
        return self._store(result, stmt.alias)

    def _exec_project(self, stmt: ast.Project) -> Result:
        result = self._through_cache(
            self._statement_cache_key(stmt),
            lambda: self._apply_limit(
                algebra.project(self._relation(stmt.relation), list(stmt.attributes)),
                stmt.limit,
                stmt.offset,
            ),
        )
        return self._store(result, stmt.alias)

    def _exec_binaryop(self, stmt: ast.BinaryOp) -> Result:
        op = {
            "JOIN": algebra.join,
            "UNION": algebra.union,
            "INTERSECT": algebra.intersection,
            "DIFFERENCE": algebra.difference,
            "DIVIDE": algebra.divide,
            "SEMIJOIN": algebra.semijoin,
            "ANTIJOIN": algebra.antijoin,
        }[stmt.op]
        result = self._through_cache(
            self._statement_cache_key(stmt),
            lambda: self._apply_limit(
                op(self._relation(stmt.left), self._relation(stmt.right)),
                stmt.limit,
                stmt.offset,
            ),
        )
        return self._store(result, stmt.alias)

    def _exec_consolidate(self, stmt: ast.Consolidate) -> Result:
        if stmt.alias:
            result = self._relation(stmt.relation).consolidated()
            return self._store(result, stmt.alias)
        removed = self.database.consolidate_in_place(stmt.relation)
        return Result(
            kind="ok",
            payload=removed,
            message="consolidated {}: {} redundant tuple(s) removed".format(
                stmt.relation, removed
            ),
        )

    def _exec_explicate(self, stmt: ast.Explicate) -> Result:
        attributes = list(stmt.attributes) or None
        if stmt.alias:
            result = self._relation(stmt.relation).explicated(attributes)
            return self._store(result, stmt.alias)
        delta = self.database.explicate_in_place(stmt.relation, attributes)
        return Result(
            kind="ok",
            payload=delta,
            message="explicated {}: tuple count changed by {:+d}".format(
                stmt.relation, delta
            ),
        )

    def _exec_conflicts(self, stmt: ast.Conflicts) -> Result:
        conflicts = find_conflicts(self._relation(stmt.relation))
        lines = [str(c) for c in conflicts] or ["(consistent)"]
        return Result(kind="conflicts", payload=conflicts, message="\n".join(lines))

    def _exec_extension(self, stmt: ast.Extension) -> Result:
        relation = self._relation(stmt.relation)
        rows = sorted(relation.extension())
        table = render_rows(list(relation.schema.attributes), rows)
        return Result(kind="extension", payload=rows, message=table)

    def _exec_show(self, stmt: ast.Show) -> Result:
        if stmt.what == "RELATIONS":
            rows = [
                (r.name, str(len(r)), ", ".join(r.schema.attributes))
                for r in self.database.relations.values()
            ]
            table = render_rows(["relation", "tuples", "attributes"], rows)
            return Result(kind="show", payload=rows, message=table)
        rows = [
            (h.name, str(len(h)), str(len(h.leaves())))
            for h in self.database.hierarchies.values()
        ]
        table = render_rows(["hierarchy", "nodes", "leaves"], rows)
        return Result(kind="show", payload=rows, message=table)

    def _exec_count(self, stmt: ast.Count) -> Result:
        from repro.core import aggregate
        from repro.core.where import select_where

        def compute():
            relation = self._relation(stmt.relation)
            if stmt.where is not None:
                relation = select_where(relation, self._condition(stmt.where))
            return aggregate.count(relation)

        value = self._through_cache(self._statement_cache_key(stmt), compute)
        return Result(
            kind="count",
            payload=value,
            message="{} atom(s)".format(value),
        )

    def _exec_save(self, stmt: ast.Save) -> Result:
        self.database.save(stmt.path)
        return Result(kind="ok", message="saved to {}".format(stmt.path))

    def _exec_explain(self, stmt: ast.Explain) -> Result:
        inner = stmt.inner
        if isinstance(inner, (ast.Select, ast.Count, ast.Project)):
            input_names = [inner.relation]
        else:  # BinaryOp
            input_names = [inner.left, inner.right]
        inputs = [self._relation(name) for name in input_names]

        lines = ["plan for: {}".format(type(inner).__name__.lower())]
        for relation in inputs:
            if len(relation) >= relation.index_threshold:
                path = "indexed applicability (BinderIndex)"
            elif relation.schema.product.needs_elimination_binding():
                path = "node-elimination binding (non-normal-form hierarchy)"
            else:
                path = "scan + minimal-binder fast path"
            lines.append(
                "  input {}: {} stored tuple(s), strategy={}, {}".format(
                    relation.name, len(relation), relation.strategy.name, path
                )
            )
        schemas_match = all(
            r.schema.same_as(inputs[0].schema) for r in inputs[1:]
        )
        join_zero_copy = False
        if schemas_match:
            from repro.core.algebra import meet_closure

            seeds = set()
            for relation in inputs:
                seeds.update(relation.asserted)
            closure = meet_closure(inputs[0].schema.product, seeds)
            lines.append(
                "  meet-closure candidates: {} (from {} seed item(s))".format(
                    len(closure), len(seeds)
                )
            )
            from repro import planner as _planner

            if _planner.enabled():
                estimated = _planner.estimate_candidates(inputs)
                actual = len(closure)
                ratio = estimated / actual if actual else float("inf")
                flag = " [off by >10x]" if ratio > 10 or ratio < 0.1 else ""
                lines.append(
                    "  estimate: ~{} candidate row(s), actual {}{}".format(
                        estimated, actual, flag
                    )
                )
                # Feed the miss back so the EWMA correction learns from
                # EXPLAIN runs exactly like from traced executions.
                _planner.observe_estimate("pointwise", estimated, actual)
        else:
            lines.append("  meet-closure candidates: over the merged schema")
            if isinstance(inner, ast.BinaryOp) and inner.op == "JOIN":
                from repro.core import bulk as _bulk

                join_zero_copy = zero_copy = all(
                    r.strategy.name == "off-path"
                    and _bulk.evaluator_for(r).sweep_exact
                    for r in inputs
                )
                lines.append(
                    "  join inputs: {}".format(
                        "zero-copy projection adaptors (no cylindric "
                        "extensions materialised)"
                        if zero_copy
                        else "materialised cylindric extensions"
                    )
                )
        normal_form = not any(
            r.schema.product.needs_elimination_binding() for r in inputs
        )
        lines.append(
            "  consolidation: {}".format(
                "fused into the bitset emission sweep"
                if normal_form
                else "literal subsumption-graph elimination"
            )
        )
        from repro import parallel as _parallel

        if schemas_match:
            fn_token = {
                "UNION": "or",
                "INTERSECT": "and",
                "DIFFERENCE": "andnot",
            }.get(getattr(inner, "op", None), "and")
            parallel_plan = _parallel.plan(
                inputs[0].schema,
                [("full", r) for r in inputs],
                fn_token=fn_token,
            )
            lines.append("  parallel: {}".format(parallel_plan.describe()))
        elif join_zero_copy:
            merged = inputs[0].schema.join_schema(inputs[1].schema)[0]
            parallel_plan = _parallel.plan(
                merged,
                [
                    (
                        "proj",
                        r,
                        tuple(merged.index_of(a) for a in r.schema.attributes),
                    )
                    for r in inputs
                ],
                fn_token="and",
            )
            lines.append("  parallel: {}".format(parallel_plan.describe()))
        else:
            lines.append("  parallel: serial (materialised inputs)")
        # Peek (not get) before executing: the line reports what the
        # execution below is about to experience without perturbing the
        # hit/miss counters twice.
        cache = self._query_cache()
        inner_key = self._statement_cache_key(inner)
        if cache is not None and inner_key is not None:
            lines.append(
                "  cache: {}".format("hit" if cache.peek(inner_key) else "miss")
            )
        result, elapsed_ms, root = self._timed_execute(
            inner, record=False, force_trace=stmt.analyze
        )
        if result.kind == "relation":
            lines.append(
                "  result: {} tuple(s), consolidated".format(len(result.payload))
            )
        else:
            lines.append("  result: {}".format(result.payload))
        lines.append("  wall time: {:.3f} ms".format(elapsed_ms))
        if stmt.analyze and root is not None:
            lines.append("  analyze:")
            lines.extend(render_span_tree(root, indent="    "))
            estimate_lines = []
            for span in root.walk():
                estimated = span.attrs.get("est_candidates")
                actual = span.attrs.get("candidates")
                if estimated is None or actual is None:
                    continue
                ratio = estimated / actual if actual else float("inf")
                flag = " [off by >10x]" if ratio > 10 or ratio < 0.1 else ""
                estimate_lines.append(
                    "    {}: estimated {} row(s), actual {}{}".format(
                        span.name, estimated, actual, flag
                    )
                )
            if estimate_lines:
                lines.append("  estimates (est vs actual rows):")
                lines.extend(estimate_lines)
        plan = Result(kind="plan", payload=result, message="\n".join(lines))
        plan.elapsed_ms = elapsed_ms
        return plan

    def _exec_set(self, stmt: ast.Set) -> Result:
        """SET PARALLEL n; / SET PLANNER ON|OFF; — execution-only knobs
        for this process: never logged, never affect answers, so the
        query cache stays valid across them."""
        from repro import parallel

        if stmt.option == "PLANNER":
            from repro import planner

            token = stmt.value.upper()
            if token in ("ON", "1", "TRUE"):
                enabled = True
            elif token in ("OFF", "0", "FALSE"):
                enabled = False
            else:
                raise HQLError(
                    "SET PLANNER expects ON or OFF, got {!r}".format(stmt.value)
                )
            planner.configure(enabled=enabled)
            message = (
                "cost-based planner on"
                if enabled
                else "cost-based planner off (legacy fixed gates)"
            )
            return Result(kind="set", payload=enabled, message=message)
        if stmt.option != "PARALLEL":
            raise HQLError("unknown SET option {!r}".format(stmt.option))
        try:
            workers = int(stmt.value)
        except ValueError:
            raise HQLError(
                "SET PARALLEL expects an integer, got {!r}".format(stmt.value)
            )
        if workers < 0:
            raise HQLError("SET PARALLEL expects a count >= 0")
        parallel.configure(workers=workers)
        message = (
            "parallel execution off (serial)"
            if workers == 0
            else "parallel workers set to {}".format(workers)
        )
        return Result(kind="set", payload=workers, message=message)

    def _exec_stats(self, stmt: ast.Stats) -> Result:
        """STATS; — one table over both registries: the database's
        engine metrics and the process-global core-layer metrics, plus
        the derived query-cache hit rate."""
        rows = []
        metrics = getattr(self.database, "metrics", None)
        if metrics is not None:
            rows.extend(metrics.rows())
        rows.extend(default_registry().rows())
        cache = self._query_cache()
        if cache is not None:
            rows.append(("querycache.hit_rate", "{:.3f}".format(cache.hit_rate)))
        from repro import planner

        planner_state = planner.describe()
        rows.append(("planner", "on" if planner_state["enabled"] else "off"))
        rows.sort()
        payload = {
            "engine": metrics.snapshot() if metrics is not None else {},
            "core": default_registry().snapshot(),
            "planner": planner_state,
        }
        table = render_rows(["metric", "value"], rows)
        return Result(kind="stats", payload=payload, message=table)

    def _exec_load(self, stmt: ast.Load) -> Result:
        from repro.engine.storage import load_database

        if self._transaction is not None:
            raise HQLError("cannot LOAD inside a transaction")
        loaded = load_database(stmt.path)
        self.database.name = loaded.name
        self.database.hierarchies = loaded.hierarchies
        self.database.relations = loaded.relations
        # Views must be re-planned against *this* database so their
        # resolvers track future DROP/CREATE in its catalog (the loaded
        # object's plans are bound to the loaded object).
        if hasattr(self.database, "define_view"):
            for name in list(getattr(self.database, "view_definitions", {})):
                self.database.drop_view(name)
            for name, spec in getattr(loaded, "view_definitions", {}).items():
                self.database.define_view(
                    name, spec["op"], spec["sources"], spec["conditions"] or None
                )
        # Every catalogued object was just replaced wholesale; version
        # counters restarted, so the whole cache is unsound.
        cache = self._query_cache()
        if cache is not None:
            cache.clear()
        return Result(kind="ok", message="loaded from {}".format(stmt.path))


def execute(database, text: str) -> List[Result]:
    """One-shot execution of a script on a fresh session."""
    return HQLExecutor(database).run(text)
