"""The database engine: catalog, transactions, persistence, HQL.

The paper positions its model as "a standard interface providing
'higher level' primitive operators … a back-end for, say, a frame-based
knowledge representation system or a semantic net".  This package is
that back-end: a catalog of hierarchies and relations
(:class:`HierarchicalDatabase`), transactions that refuse to commit an
unresolved conflict (section 3.1's "whenever an update is made we
require that the update does not create an unresolved conflict"), JSON
persistence, and a small statement language (HQL) exposing every model
operation.
"""

from repro.engine.database import HierarchicalDatabase
from repro.engine.oplog import OperationLog
from repro.engine.repl import HQLRepl
from repro.engine.storage import save_database, load_database
from repro.engine.transactions import Transaction

__all__ = [
    "HierarchicalDatabase",
    "Transaction",
    "save_database",
    "load_database",
    "OperationLog",
    "HQLRepl",
]
