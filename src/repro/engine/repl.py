"""An interactive HQL shell.

``python -m repro.engine.repl [database.json]`` starts a session; every
line is parsed as HQL (statements may span lines until the terminating
``;``).  Meta-commands: ``\\q`` quits, ``\\h`` prints help.  Errors are
reported and the session continues.  The class is stream-parameterised
so tests can drive it with ``io.StringIO``.
"""

from __future__ import annotations

import sys
from typing import IO, Optional

from repro.engine.database import HierarchicalDatabase
from repro.engine.hql import HQLExecutor
from repro.errors import ReproError

HELP = """\
HQL quick reference:
  CREATE HIERARCHY h;              CREATE CLASS c IN h UNDER p;
  CREATE INSTANCE i IN h UNDER c;  CREATE RELATION r (a: h, ...);
  ASSERT r (v, ...);               ASSERT NOT r (v, ...);
  RETRACT r (v, ...);              TRUTH r (v, ...);
  JUSTIFY r (v, ...);              SELECT FROM r WHERE a = v AS out;
  PROJECT r ON a, b AS out;        JOIN/UNION/INTERSECT/DIFFERENCE x WITH y AS out;
  CONSOLIDATE r;  EXPLICATE r;     CONFLICTS r;  EXTENSION r;  COUNT r;
  SHOW RELATIONS; SHOW HIERARCHIES;
  EXPLAIN [ANALYZE] <query>;       STATS;
  SET PARALLEL n;                  SET PLANNER ON|OFF;
  BEGIN; COMMIT; ROLLBACK;         SAVE 'file'; LOAD 'file';
Meta: \\h help, \\q quit, \\stats (or .stats) metrics, \\slowlog (or
      .slowlog) the slow-query log, \\timing toggle per-statement times,
      \\save <file> / \\load <file> (or .save/.load) persistence without
      HQL quoting."""


class HQLRepl:
    """A line-oriented HQL session over input/output streams."""

    def __init__(
        self,
        database: Optional[HierarchicalDatabase] = None,
        stdin: IO[str] | None = None,
        stdout: IO[str] | None = None,
        prompt: str = "hql> ",
        continuation: str = "...> ",
    ) -> None:
        self.database = database if database is not None else HierarchicalDatabase()
        self.session = HQLExecutor(self.database)
        self.stdin = stdin if stdin is not None else sys.stdin
        self.stdout = stdout if stdout is not None else sys.stdout
        self.prompt = prompt
        self.continuation = continuation
        #: When on, every printed result is followed by its wall time —
        #: the same ``hql.statement`` span number EXPLAIN reports.
        self.timing = False

    # ------------------------------------------------------------------

    def _write(self, text: str) -> None:
        self.stdout.write(text)
        if not text.endswith("\n"):
            self.stdout.write("\n")

    def run(self) -> None:
        """Read-eval-print until EOF or ``\\q``."""
        self._write("repro HQL shell — \\h for help, \\q to quit")
        buffered = ""
        while True:
            self.stdout.write(self.continuation if buffered else self.prompt)
            self.stdout.flush()
            line = self.stdin.readline()
            if not line:
                break
            stripped = line.strip()
            if not buffered and stripped in ("\\q", "\\quit", "exit", "quit"):
                break
            if not buffered and stripped in ("\\h", "\\help", "help"):
                self._write(HELP)
                continue
            if not buffered and stripped in ("\\stats", ".stats"):
                self.execute("STATS;")
                continue
            if not buffered and stripped in ("\\slowlog", ".slowlog"):
                log = self.database.slow_query_log
                self._write(
                    log.render() if log is not None
                    else "slow-query log: not enabled "
                    "(db.enable_slow_query_log(threshold_ms))"
                )
                continue
            if not buffered and stripped in ("\\timing", ".timing"):
                self.timing = not self.timing
                self._write("timing {}".format("on" if self.timing else "off"))
                continue
            first_word = stripped.split(None, 1)[0] if stripped else ""
            if not buffered and first_word in ("\\save", ".save", "\\load", ".load"):
                self._meta_persist(stripped)
                continue
            if not stripped:
                continue
            buffered = (buffered + "\n" + line) if buffered else line
            if not stripped.endswith(";"):
                continue  # statement not finished; keep buffering
            script, buffered = buffered, ""
            self.execute(script)
        self._write("bye")

    def _meta_persist(self, stripped: str) -> None:
        """``\\save <file>`` / ``\\load <file>`` — persistence meta
        commands that bypass HQL string quoting.  Storage problems
        (:class:`~repro.errors.StorageError`, raw ``OSError``) surface
        as one-line user messages, never tracebacks."""
        from repro.engine.hql import ast as hql_ast

        parts = stripped.split(None, 1)
        command = parts[0].lstrip("\\.")
        path = parts[1].strip() if len(parts) > 1 else ""
        if not path:
            self._write("usage: \\{} <file>".format(command))
            return
        statement = (
            hql_ast.Save(path=path) if command == "save" else hql_ast.Load(path=path)
        )
        try:
            self._write(str(self.session.execute_statement(statement)))
        except (ReproError, OSError) as exc:
            self._write("error: {}".format(exc))

    def execute(self, script: str) -> None:
        """Run one buffered script, printing results or the error.
        ``OSError`` is included for the persistence statements — a
        full-disk or permission failure during ``SAVE``/``LOAD`` is a
        user message, not a traceback."""
        try:
            for result in self.session.run(script):
                self._write(str(result))
                if self.timing and result.elapsed_ms is not None:
                    self._write("time: {:.3f} ms".format(result.elapsed_ms))
        except (ReproError, OSError) as exc:
            self._write("error: {}".format(exc))


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args:
        database = HierarchicalDatabase.load(args[0])
    else:
        database = HierarchicalDatabase("session")
    HQLRepl(database).run()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
