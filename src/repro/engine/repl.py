"""An interactive HQL shell.

``python -m repro.engine.repl [database.json]`` starts a session; every
line is parsed as HQL (statements may span lines until the terminating
``;``).  Meta-commands: ``\\q`` quits, ``\\h`` prints help.  Errors are
reported and the session continues.  The class is stream-parameterised
so tests can drive it with ``io.StringIO``.
"""

from __future__ import annotations

import sys
from typing import IO, Optional

from repro.engine.database import HierarchicalDatabase
from repro.engine.hql import HQLExecutor
from repro.errors import ReproError

HELP = """\
HQL quick reference:
  CREATE HIERARCHY h;              CREATE CLASS c IN h UNDER p;
  CREATE INSTANCE i IN h UNDER c;  CREATE RELATION r (a: h, ...);
  ASSERT r (v, ...);               ASSERT NOT r (v, ...);
  RETRACT r (v, ...);              TRUTH r (v, ...);
  JUSTIFY r (v, ...);              SELECT FROM r WHERE a = v AS out;
  PROJECT r ON a, b AS out;        JOIN/UNION/INTERSECT/DIFFERENCE x WITH y AS out;
  CONSOLIDATE r;  EXPLICATE r;     CONFLICTS r;  EXTENSION r;  COUNT r;
  SHOW RELATIONS; SHOW HIERARCHIES;
  EXPLAIN [ANALYZE] <query>;       STATS;
  BEGIN; COMMIT; ROLLBACK;         SAVE 'file'; LOAD 'file';
Meta: \\h help, \\q quit, \\stats (or .stats) metrics, \\slowlog (or
      .slowlog) the slow-query log, \\timing toggle per-statement times."""


class HQLRepl:
    """A line-oriented HQL session over input/output streams."""

    def __init__(
        self,
        database: Optional[HierarchicalDatabase] = None,
        stdin: IO[str] | None = None,
        stdout: IO[str] | None = None,
        prompt: str = "hql> ",
        continuation: str = "...> ",
    ) -> None:
        self.database = database if database is not None else HierarchicalDatabase()
        self.session = HQLExecutor(self.database)
        self.stdin = stdin if stdin is not None else sys.stdin
        self.stdout = stdout if stdout is not None else sys.stdout
        self.prompt = prompt
        self.continuation = continuation
        #: When on, every printed result is followed by its wall time —
        #: the same ``hql.statement`` span number EXPLAIN reports.
        self.timing = False

    # ------------------------------------------------------------------

    def _write(self, text: str) -> None:
        self.stdout.write(text)
        if not text.endswith("\n"):
            self.stdout.write("\n")

    def run(self) -> None:
        """Read-eval-print until EOF or ``\\q``."""
        self._write("repro HQL shell — \\h for help, \\q to quit")
        buffered = ""
        while True:
            self.stdout.write(self.continuation if buffered else self.prompt)
            self.stdout.flush()
            line = self.stdin.readline()
            if not line:
                break
            stripped = line.strip()
            if not buffered and stripped in ("\\q", "\\quit", "exit", "quit"):
                break
            if not buffered and stripped in ("\\h", "\\help", "help"):
                self._write(HELP)
                continue
            if not buffered and stripped in ("\\stats", ".stats"):
                self.execute("STATS;")
                continue
            if not buffered and stripped in ("\\slowlog", ".slowlog"):
                log = self.database.slow_query_log
                self._write(
                    log.render() if log is not None
                    else "slow-query log: not enabled "
                    "(db.enable_slow_query_log(threshold_ms))"
                )
                continue
            if not buffered and stripped in ("\\timing", ".timing"):
                self.timing = not self.timing
                self._write("timing {}".format("on" if self.timing else "off"))
                continue
            if not stripped:
                continue
            buffered = (buffered + "\n" + line) if buffered else line
            if not stripped.endswith(";"):
                continue  # statement not finished; keep buffering
            script, buffered = buffered, ""
            self.execute(script)
        self._write("bye")

    def execute(self, script: str) -> None:
        """Run one buffered script, printing results or the error."""
        try:
            for result in self.session.run(script):
                self._write(str(result))
                if self.timing and result.elapsed_ms is not None:
                    self._write("time: {:.3f} ms".format(result.elapsed_ms))
        except ReproError as exc:
            self._write("error: {}".format(exc))


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args:
        database = HierarchicalDatabase.load(args[0])
    else:
        database = HierarchicalDatabase("session")
    HQLRepl(database).run()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
