"""A statement-level operation log (write-ahead journal).

Snapshots (:mod:`repro.engine.storage`) capture a database at a point in
time; the operation log complements them with durability between
snapshots: every mutating HQL statement is appended as one line of HQL
text, and :meth:`OperationLog.replay` rebuilds state by re-executing
them.  Attach a log to an :class:`~repro.engine.hql.HQLExecutor` via its
``log`` parameter; transaction bodies are journalled only on COMMIT, so
a replayed log never reproduces a rolled-back write.

The format is deliberately trivial — one statement per line, ``--``
comments allowed — so a log is also a human-readable audit trail and a
valid HQL script.  A single reserved comment, ``-- checkpoint <n>``
as the first line, marks which snapshot generation the log continues
(see :meth:`reset` and :mod:`repro.server.recovery`).

Durability trade-off
--------------------
``append`` always *flushes* to the OS, so a journalled statement
survives the **process** dying at any later point.  Surviving the
**machine** dying additionally requires ``fsync``, which forces the
OS page cache to stable storage at a cost of roughly one disk flush
per statement (often the dominant cost of a small write).  The flag
defaults to **off** — process-crash durability with snapshot-bounded
loss on power failure — and can be set per log
(``OperationLog(path, fsync=True)``) or per call
(``log.append(stmt, fsync=True)``); the server exposes it as
``repro serve --fsync``.
"""

from __future__ import annotations

import os
from typing import List, Optional, Union

from repro.engine.hql import ast as hql_ast

CHECKPOINT_PREFIX = "-- checkpoint "


class OperationLog:
    """Append-only journal of mutating HQL statements.

    ``fsync`` sets the instance-wide default for :meth:`append` (see
    the module docstring for the trade-off).
    """

    def __init__(self, path: str, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync

    def append(
        self,
        statement: Union[hql_ast.Statement, str],
        fsync: Optional[bool] = None,
    ) -> None:
        """Append one statement (AST node or raw HQL text).

        The write is flushed to the OS always; it is additionally
        fsynced to stable storage when ``fsync`` (or the instance
        default) is true.
        """
        if isinstance(statement, hql_ast.Statement):
            line = hql_ast.to_hql(statement)
        else:
            line = statement.strip()
            if not line.endswith(";"):
                line += ";"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            if self.fsync if fsync is None else fsync:
                os.fsync(handle.fileno())

    def entries(self) -> List[str]:
        """Every journalled statement, in append order (comment lines,
        including the checkpoint marker, are skipped).

        A file that does not end in a newline has a **torn tail**: the
        process died mid-append, so the final line is an incomplete
        statement that was never flushed in full and therefore never
        acknowledged to any caller.  It is silently dropped — replaying
        it would fail the whole recovery on a half-written statement
        that, by the durability contract, never happened.
        """
        if not os.path.exists(self.path):
            return []
        with open(self.path, "r", encoding="utf-8") as handle:
            text = handle.read()
        lines = text.split("\n")
        if text and not text.endswith("\n"):
            lines = lines[:-1]  # torn tail: incomplete, never acked
        return [
            line.strip()
            for line in lines
            if line.strip() and not line.strip().startswith("--")
        ]

    def replay(self, database) -> int:
        """Re-execute the journal against ``database``; returns the
        number of statements applied."""
        entries = self.entries()
        if entries:
            database.execute("\n".join(entries))
        return len(entries)

    def truncate(self) -> None:
        """Discard the journal (e.g. after folding it into a snapshot)."""
        if os.path.exists(self.path):
            os.unlink(self.path)

    # ------------------------------------------------------------------
    # checkpoint markers (snapshot/log rotation handshake)
    # ------------------------------------------------------------------

    def reset(self, checkpoint: Optional[int] = None) -> None:
        """Start a fresh journal, optionally stamped with a checkpoint
        marker naming the snapshot generation it continues.  The reset
        is always fsynced — it is the rare, correctness-critical half
        of log rotation."""
        with open(self.path, "w", encoding="utf-8") as handle:
            if checkpoint is not None:
                handle.write("{}{}\n".format(CHECKPOINT_PREFIX, int(checkpoint)))
            handle.flush()
            os.fsync(handle.fileno())

    def checkpoint_marker(self) -> Optional[int]:
        """The checkpoint generation this log continues, or ``None``
        for an unmarked (or missing) log."""
        if not os.path.exists(self.path):
            return None
        with open(self.path, "r", encoding="utf-8") as handle:
            first = handle.readline().strip()
        if first.startswith(CHECKPOINT_PREFIX):
            try:
                return int(first[len(CHECKPOINT_PREFIX):])
            except ValueError:
                return None
        return None

    def __len__(self) -> int:
        return len(self.entries())
