"""A statement-level operation log (write-ahead journal).

Snapshots (:mod:`repro.engine.storage`) capture a database at a point in
time; the operation log complements them with durability between
snapshots: every mutating HQL statement is appended as one line of HQL
text, and :meth:`OperationLog.replay` rebuilds state by re-executing
them.  Attach a log to an :class:`~repro.engine.hql.HQLExecutor` via its
``log`` parameter; transaction bodies are journalled only on COMMIT, so
a replayed log never reproduces a rolled-back write.

The format is deliberately trivial — one statement per line, ``--``
comments allowed — so a log is also a human-readable audit trail and a
valid HQL script.
"""

from __future__ import annotations

import os
from typing import List, Union

from repro.engine.hql import ast as hql_ast


class OperationLog:
    """Append-only journal of mutating HQL statements."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append(self, statement: Union[hql_ast.Statement, str]) -> None:
        """Append one statement (AST node or raw HQL text) durably."""
        if isinstance(statement, hql_ast.Statement):
            line = hql_ast.to_hql(statement)
        else:
            line = statement.strip()
            if not line.endswith(";"):
                line += ";"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def entries(self) -> List[str]:
        """Every journalled statement, in append order."""
        if not os.path.exists(self.path):
            return []
        with open(self.path, "r", encoding="utf-8") as handle:
            return [line.strip() for line in handle if line.strip()]

    def replay(self, database) -> int:
        """Re-execute the journal against ``database``; returns the
        number of statements applied."""
        entries = self.entries()
        if entries:
            database.execute("\n".join(entries))
        return len(entries)

    def truncate(self) -> None:
        """Discard the journal (e.g. after folding it into a snapshot)."""
        if os.path.exists(self.path):
            os.unlink(self.path)

    def __len__(self) -> int:
        return len(self.entries())
