"""Picklable shard snapshots.

A :class:`ShardSnapshot` is everything one worker needs to re-run the
serial bitset machinery on its slice of the workload, expressed in plain
data (strings, ints, bytes) so it crosses the process boundary with one
pickle and no live object graphs:

* per input relation: the shard's items, their asserted signs packed
  into two bitsets (serialised via ``int.to_bytes``), and — for the
  zero-copy join adaptors — the input's positions within the merged
  schema;
* per hierarchy: the sub-hierarchy induced by the downward closure of
  the shard's values (:meth:`Hierarchy.subgraph_payload`), including the
  relevant slice of the memoised meet table.

Workers rebuild real :class:`Hierarchy` / :class:`RelationSchema` /
:class:`HRelation` objects from the snapshot and run the stock
evaluators, then return *everything* they compute; deciding which
shard's answer is authoritative for each item is the coordinator's job
(:meth:`~repro.parallel.partition.Partition.owner_map`), since
ownership needs the full hierarchy — a shard cannot tell a globally
wildcard item from one whose component seeds live in another shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core import bulk as _bulk
from repro.core.schema import RelationSchema
from repro.hierarchy.product import Item

from repro.parallel.partition import Partition


@dataclass
class ShardInput:
    """One input relation, restricted to a shard.

    ``positions`` is ``None`` for inputs over the full (output) schema;
    for zero-copy join inputs it maps the input's own attributes onto
    merged-schema positions.  ``cone`` inputs carry no tuples at all —
    the worker builds a :class:`~repro.core.bulk.ConeEvaluator`.
    """

    items: Tuple[Item, ...] = ()
    signs: bytes = b"\x00"
    positions: Optional[Tuple[int, ...]] = None
    cone: Optional[Item] = None
    #: The source relation's own preemption strategy name (``None``
    #: inherits the snapshot-level strategy).
    strategy: Optional[str] = None


@dataclass
class ShardSnapshot:
    """The self-contained task description shipped to one worker."""

    shard: int
    strategy: str
    attributes: Tuple[str, ...]
    #: Per attribute position, the key of its hierarchy payload.
    hierarchy_keys: Tuple[str, ...]
    #: Hierarchy payload key -> ``Hierarchy.subgraph_payload`` dict.
    hierarchies: Dict[str, dict]
    inputs: Tuple[ShardInput, ...]
    #: Extra meet-closure seeds (selection cones etc.), already over the
    #: output schema.
    extra_seeds: Tuple[Item, ...] = ()


def _pad(item: Item, positions: Sequence[int], top: Item) -> Item:
    padded = list(top)
    for position, value in zip(positions, item):
        padded[position] = value
    return tuple(padded)


def build_snapshots(
    schema: RelationSchema,
    strategy: str,
    input_specs: Sequence[tuple],
    partition: Partition,
    extra_seeds: Sequence[Item] = (),
    skip_roots: bool = False,
) -> List[ShardSnapshot]:
    """One :class:`ShardSnapshot` per partition bin.

    ``input_specs`` entries are ``("full", relation)``, ``("proj",
    relation, positions)`` or ``("cone", item)``; items are routed to
    the shard whose bin holds their (padded) form, with residual items
    replicated everywhere.

    ``skip_roots=True`` keeps a hierarchy's root value from seeding the
    shard closure.  The root's cone is the *whole* hierarchy, so one
    root-valued position (the cylindric padding of every zero-copy join
    input, a root actually asserted into a relation) would otherwise
    ship the full graph to every shard and erase the decomposition win.
    Sound for the pointwise tasks only: their candidates are meet
    closures, every non-root coordinate of a meet descends from some
    concrete seed (``meet(root, x) = x``), the rebuilt subgraph is
    capped by a node with the root's name, and the redundancy sweep
    compares candidate items pairwise by subsumption.  The extension
    task must *not* skip (it enumerates ``leaves_under`` of stored
    items, and the leaves of a root-valued item reach outside the
    concrete-value closure).
    """
    top = schema.product.top
    shard_count = partition.shards
    residual_set = set(partition.residual)
    snapshots: List[ShardSnapshot] = []

    bin_of: Dict[Item, int] = {}
    for b, bin_items in enumerate(partition.bins):
        for item in bin_items:
            bin_of[item] = b

    # Pre-split every tuple-bearing input by shard once.
    per_input_shards: List[List[List[Tuple[Item, bool]]]] = []
    for spec in input_specs:
        kind = spec[0]
        if kind == "cone":
            per_input_shards.append([[] for _ in range(shard_count)])
            continue
        relation = spec[1]
        positions = spec[2] if kind == "proj" else None
        shards: List[List[Tuple[Item, bool]]] = [[] for _ in range(shard_count)]
        for item, truth in relation.asserted.items():
            routed = item if positions is None else _pad(item, positions, top)
            target = bin_of.get(routed)
            if target is not None:
                shards[target].append((item, truth))
            elif routed in residual_set:
                for shard in shards:
                    shard.append((item, truth))
        per_input_shards.append(shards)

    for b in range(shard_count):
        # Values per hierarchy object: everything this shard's items,
        # residual items, and extra seeds mention, position by position.
        hier_key: Dict[int, str] = {}
        hier_values: Dict[str, Set[str]] = {}
        hierarchy_keys: List[str] = []
        for position, hierarchy in enumerate(schema.hierarchies):
            key = hier_key.get(id(hierarchy))
            if key is None:
                key = "{}#{}".format(hierarchy.name, len(hier_values))
                hier_key[id(hierarchy)] = key
                hier_values[key] = set()
            hierarchy_keys.append(key)

        roots = tuple(h.root for h in schema.hierarchies)

        def note(item: Item) -> None:
            for position, value in enumerate(item):
                if skip_roots and value == roots[position]:
                    continue
                hier_values[hierarchy_keys[position]].add(value)

        inputs: List[ShardInput] = []
        for spec, shards in zip(input_specs, per_input_shards):
            kind = spec[0]
            if kind == "cone":
                note(spec[1])
                inputs.append(ShardInput(cone=spec[1]))
                continue
            positions = spec[2] if kind == "proj" else None
            pairs = shards[b]
            for item, _ in pairs:
                padded = item if positions is None else _pad(item, positions, top)
                note(padded)
            pos_mask, _ = _bulk.sign_masks(pairs)
            inputs.append(
                ShardInput(
                    items=tuple(item for item, _ in pairs),
                    signs=_bulk.mask_to_bytes(pos_mask),
                    positions=tuple(positions) if positions is not None else None,
                    strategy=spec[1].strategy.name,
                )
            )
        for seed in extra_seeds:
            note(seed)

        payloads: Dict[str, dict] = {}
        for position, hierarchy in enumerate(schema.hierarchies):
            key = hierarchy_keys[position]
            if key not in payloads:
                payloads[key] = hierarchy.subgraph_payload(hier_values[key])
        snapshots.append(
            ShardSnapshot(
                shard=b,
                strategy=strategy,
                attributes=tuple(schema.attributes),
                hierarchy_keys=tuple(hierarchy_keys),
                hierarchies=payloads,
                inputs=tuple(inputs),
                extra_seeds=tuple(extra_seeds),
            )
        )
    return snapshots
