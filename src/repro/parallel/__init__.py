"""Shard-parallel execution: cone-partitioned bitset evaluation.

The hierarchy that makes condensed relations expressive also makes them
decomposable: tuples whose value cones are disjoint on every attribute
can never share an applicable set, meet to a common candidate, or
conflict.  This package partitions a workload's stored tuples by those
*hierarchy cones* (connected components of the overlap structure),
ships each shard a picklable snapshot — items, sign bitsets, the
induced sub-hierarchies with their meet-table slices — to a process
pool, runs the stock serial sweeps per shard, and merges the owned
results back into the exact serial emission order.

Entry points are wired behind the existing API: ``algebra.combine`` /
``join`` / ``select``, ``HRelation.extension``, ``explicate``,
``find_conflicts``.  Everything is gated — ``REPRO_PARALLEL=0`` (the
default), small workloads, non-decomposable cone structures, preference
edges, and capture hooks all fall back to the serial path, which
remains the semantic ground truth.  See docs/ARCHITECTURE.md.
"""

from repro.parallel.config import ParallelConfig, config, configure, reset
from repro.parallel.engine import (
    CONFLICT,
    Plan,
    maybe_combine,
    maybe_conflicts,
    maybe_extension,
    maybe_join,
    maybe_pointwise,
    maybe_select,
    plan,
)
from repro.parallel.partition import partition_items, value_components
from repro.parallel.pool import run_tasks, shutdown
from repro.parallel.snapshot import ShardSnapshot, build_snapshots

__all__ = [
    "CONFLICT",
    "ParallelConfig",
    "Plan",
    "ShardSnapshot",
    "build_snapshots",
    "config",
    "configure",
    "maybe_combine",
    "maybe_conflicts",
    "maybe_extension",
    "maybe_join",
    "maybe_pointwise",
    "maybe_select",
    "partition_items",
    "plan",
    "reset",
    "run_tasks",
    "shutdown",
    "value_components",
]
