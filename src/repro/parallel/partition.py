"""Cone partitioning: split a workload's items into independent shards.

The hierarchy hands us a partitioning key for free: two stored items can
only interact — share an applicable tuple, meet to a common candidate,
conflict — when, on every attribute, their value cones intersect.  Cone
intersection is an equivalence-closable relation over the *occurring*
values of an attribute ("shares a descendant with"), so its connected
components split the item set into groups no algebra sweep ever mixes.

Components are found with one O(V + E) *owner sweep* per attribute
instead of the quadratic pairwise overlap test: walking the hierarchy in
topological order, each node inherits the union-find class of its
parents' owners (plus itself when it is an occurring value).  Two values
share a descendant iff some node inherits from both, which is exactly
when the sweep unions their classes.

An item's key is the tuple of its per-attribute component ids over the
*active* attributes.  An attribute is inactive when the hierarchy root
appears too often among its values (e.g. the padded positions of a
cylindric join extension) — keying on it would collapse everything into
one component.  Items carrying a root (or other wildcard) on an active
attribute overlap every component there; they go to the shared
**residual shard**, which is replicated into every worker so each shard
still sees the complete applicable set for the items it owns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.schema import RelationSchema
from repro.hierarchy.product import Item

#: Key component for a value that overlaps every component of its
#: attribute (the hierarchy root, or a value with no occurring seed
#: above or at it).
WILDCARD = -1

Key = Tuple[int, ...]


def value_components(hierarchy, values: Sequence[str]) -> Dict[str, int]:
    """Map each of ``values`` to its connected component under the
    shares-a-descendant relation, via one topological owner sweep.

    Soundness and completeness: node *x* unions the components of two
    values exactly when both have a path down to *x*, i.e. when their
    descendant cones intersect at *x*; conversely any two values whose
    cones intersect share some node, and that node's parents-side
    owners force the union when it is reached.
    """
    index: Dict[str, int] = {}
    for value in values:
        if value not in index:
            index[value] = len(index)
    parent = list(range(len(index)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    owner: Dict[str, int] = {}
    for node in hierarchy.topological_order():
        current = index.get(node, -1)
        for above in hierarchy.parents(node):
            candidate = owner.get(above, -1)
            if candidate < 0:
                continue
            if current < 0:
                current = candidate
            else:
                root_a, root_b = find(current), find(candidate)
                if root_a != root_b:
                    parent[root_b] = root_a
        owner[node] = current
    return {value: find(i) for value, i in index.items()}


def inherit_components(hierarchy, seed_components: Dict[str, int]) -> Dict[str, int]:
    """Extend a value -> component map to *every* node of the hierarchy
    by inheritance: a node's component is its own seed component, or any
    parent's (all parents with one agree — differing components above a
    shared descendant would have been unioned by the owner sweep).
    Nodes with no seed at or above them map to :data:`WILDCARD`.

    Workers run this over their rebuilt sub-hierarchies to decide, per
    emitted candidate or atom, whether the shard owns it.
    """
    out: Dict[str, int] = {}
    for node in hierarchy.topological_order():
        component = seed_components.get(node, WILDCARD)
        if component == WILDCARD:
            for above in hierarchy.parents(node):
                inherited = out.get(above, WILDCARD)
                if inherited != WILDCARD:
                    component = inherited
                    break
        out[node] = component
    return out


@dataclass
class Partition:
    """A balanced assignment of items to shards.

    ``bins[b]`` holds the items of the component groups packed into
    shard *b*; ``residual`` holds the cross-cone items replicated into
    every shard.  ``owned_keys[b]`` names the component keys shard *b*
    is authoritative for; keys outside every shard (wildcards, novel
    meet combinations) belong to ``residual_bin``.
    """

    active: Tuple[bool, ...]
    comp_maps: Tuple[Dict[str, int], ...]
    bins: List[List[Item]]
    owned_keys: List[Set[Key]]
    residual: List[Item]
    residual_bin: int = 0
    groups: int = 0
    assigned_keys: Set[Key] = field(default_factory=set)

    @property
    def shards(self) -> int:
        return len(self.bins)

    def owner_map(self, schema: RelationSchema):
        """A function ``item -> shard index`` deciding, from the *full*
        hierarchies, which shard is authoritative for any item — stored,
        meet candidate, or atom.

        Ownership must be decided against the full hierarchy: an item
        reached only through a residual item's cone can look wildcard
        inside a shard's sub-hierarchy while globally carrying a
        concrete component key (its comp seeds live in another shard's
        group), so shards never self-assess — the coordinator filters
        their returned results through this map.  Items with a wildcard
        or unassigned (novel) key belong to the residual shard, whose
        replicated residual tuples are exactly their applicable set.
        """
        inherited: List[Optional[Dict[str, int]]] = [
            inherit_components(schema.hierarchies[position], self.comp_maps[position])
            if flag
            else None
            for position, flag in enumerate(self.active)
        ]
        key_to_bin: Dict[Key, int] = {}
        for b, keys in enumerate(self.owned_keys):
            for key in keys:
                key_to_bin[key] = b
        residual_bin = self.residual_bin

        def owner_of(item: Item) -> int:
            key: List[int] = []
            for position, comp_map in enumerate(inherited):
                if comp_map is None:
                    continue
                component = comp_map.get(item[position], WILDCARD)
                if component == WILDCARD:
                    return residual_bin
                key.append(component)
            return key_to_bin.get(tuple(key), residual_bin)

        return owner_of

    def key_of(self, item: Item, roots: Sequence[str]) -> Optional[Key]:
        """The item's component key over the active attributes, or
        ``None`` when any active component is a wildcard."""
        key: List[int] = []
        for position, flag in enumerate(self.active):
            if not flag:
                continue
            value = item[position]
            if value == roots[position]:
                return None
            component = self.comp_maps[position].get(value, WILDCARD)
            if component == WILDCARD:
                return None
            key.append(component)
        return tuple(key)


def partition_items(
    schema: RelationSchema,
    items: Sequence[Item],
    workers: int,
    forced_residual: Sequence[Item] = (),
    residual_limit: float = 0.5,
    root_fraction: float = 0.2,
    fanout: int = 1,
) -> Tuple[Optional[Partition], str]:
    """Partition distinct ``items`` into at most ``workers * fanout``
    shards.

    A shard is a unit of decomposition, not of execution: its sweeps
    run over its own cone's bitset width, so packing the groups into
    more shards than workers still pays — k equal shards cost about
    1/k of the full-width sweep in total, and the pool queues the
    excess tasks.  ``forced_residual`` items (selection cones, view
    seeds) are routed to the residual shard unconditionally so every
    worker sees them.  Returns ``(partition, "")`` or ``(None,
    reason)`` when the workload does not decompose (one cone,
    everything residual, ...).
    """
    total = len(items)
    if total == 0:
        return None, "no stored tuples"
    roots = [h.root for h in schema.hierarchies]

    # Activity: keying on an attribute whose values are mostly the root
    # (cylindric padding) would merge every component into one.
    active: List[bool] = []
    threshold = max(1, int(total * root_fraction))
    for position, root in enumerate(roots):
        root_count = sum(1 for item in items if item[position] == root)
        active.append(total - root_count > 0 and root_count <= threshold)
    if not any(active):
        return None, "no partitionable attribute (root-heavy values)"

    comp_maps: List[Dict[str, int]] = []
    for position, flag in enumerate(active):
        if not flag:
            comp_maps.append({})
            continue
        values = [
            item[position] for item in items if item[position] != roots[position]
        ]
        comp_maps.append(value_components(schema.hierarchies[position], values))

    partition = Partition(
        active=tuple(active), comp_maps=tuple(comp_maps),
        bins=[], owned_keys=[], residual=[],
    )
    forced = set(forced_residual)
    item_set = set(items)
    groups: Dict[Key, List[Item]] = {}
    residual: List[Item] = []
    for item in items:
        key = None if item in forced else partition.key_of(item, roots)
        if key is None:
            residual.append(item)
        else:
            groups.setdefault(key, []).append(item)
    for item in forced_residual:
        if item not in item_set:
            residual.append(item)

    if len(groups) < 2:
        return None, "single hierarchy cone"
    if len(residual) > residual_limit * total:
        return None, "residual shard too large ({}/{} items)".format(
            len(residual), total
        )

    shard_count = min(max(1, workers) * max(1, fanout), len(groups))
    bins: List[List[Item]] = [[] for _ in range(shard_count)]
    owned: List[Set[Key]] = [set() for _ in range(shard_count)]
    loads = [0] * shard_count
    # Greedy first-fit-decreasing: largest groups first onto the least
    # loaded shard keeps the skew small without an exact solver.
    for key in sorted(groups, key=lambda k: (-len(groups[k]), k)):
        target = loads.index(min(loads))
        bins[target].extend(groups[key])
        owned[target].add(key)
        loads[target] += len(groups[key])

    partition.bins = bins
    partition.owned_keys = owned
    partition.residual = residual
    partition.residual_bin = 0
    partition.groups = len(groups)
    partition.assigned_keys = set(groups)
    return partition, ""
