"""Runtime configuration for the parallel execution layer.

One process-global :class:`ParallelConfig` governs every entry point
(the algebra hooks, ``extension``, ``explicate``, ``find_conflicts``).
It is seeded from the environment at import time —

* ``REPRO_PARALLEL`` — worker count (``0`` disables the layer);
* ``REPRO_PARALLEL_MIN_TUPLES`` — the serial-fallback cost gate: below
  this many stored tuples an operation never pays fork + pickle;
* ``REPRO_PARALLEL_FANOUT`` — shards per worker (decomposition degree);
* ``REPRO_PARALLEL_START`` — multiprocessing start method override
  (``fork`` / ``forkserver`` / ``spawn``);

— and updated at runtime by :func:`configure` (HQL ``SET PARALLEL n``
and ``repro serve --workers n`` both land here).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs for the cone-partitioned execution layer.

    Attributes
    ----------
    workers:
        Shard / process budget.  ``0`` disables parallel execution
        entirely; ``1`` runs the full shard pipeline inline (no
        subprocess, no pickling) — useful for measuring decomposition
        overhead and for deterministic tests.
    min_tuples:
        Serial-fallback cost gate.  ``0`` force-enables partitioning
        attempts regardless of size.  When the planner is on
        (``REPRO_PLANNER``, the default) any positive value delegates
        the decision to :func:`repro.planner.parallel_gate` — the
        priced serial-vs-dispatch comparison; with the planner off the
        legacy behaviour holds: operations over fewer stored tuples
        than this never attempt to partition.
    fanout:
        Shards per worker.  Shards are units of *decomposition* —
        a shard's bitset sweeps run over its own cone's width, so k
        equal shards cost roughly 1/k of the full-width sweep in total
        — while workers are units of *execution*; oversubscribing
        shards both shrinks total sweep work and smooths load skew
        across the pool.
    residual_limit:
        Maximum fraction of items allowed in the cross-cone residual
        shard before the partition is judged unprofitable.
    start_method:
        Optional :mod:`multiprocessing` start method; ``None`` picks
        ``fork`` where available (cheapest on POSIX) else the platform
        default.
    """

    workers: int = 0
    min_tuples: int = 2048
    residual_limit: float = 0.5
    fanout: int = 4
    start_method: Optional[str] = None


def _int_env(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def _from_env() -> ParallelConfig:
    return ParallelConfig(
        workers=max(0, _int_env("REPRO_PARALLEL", 0)),
        min_tuples=max(0, _int_env("REPRO_PARALLEL_MIN_TUPLES", 2048)),
        fanout=max(1, _int_env("REPRO_PARALLEL_FANOUT", 4)),
        start_method=os.environ.get("REPRO_PARALLEL_START") or None,
    )


_CONFIG: ParallelConfig = _from_env()


def config() -> ParallelConfig:
    """The live configuration."""
    return _CONFIG


def configure(**overrides) -> ParallelConfig:
    """Update the global configuration; unknown keys raise ``TypeError``.

    Returns the new configuration.  ``configure(workers=4)`` is what
    ``SET PARALLEL 4`` and ``--workers 4`` call.
    """
    global _CONFIG
    _CONFIG = replace(_CONFIG, **overrides)
    return _CONFIG


def reset() -> ParallelConfig:
    """Re-read the configuration from the environment (tests)."""
    global _CONFIG
    _CONFIG = _from_env()
    return _CONFIG
