"""The coordinator: gate, partition, dispatch, merge.

Every parallel entry point follows one shape:

1. **Gate** — cheap checks that decide serial vs parallel *before* any
   partitioning work: layer enabled, no ``capture`` hook, a picklable
   combining function, sweep-friendly hierarchies, and a cost gate —
   the planner's priced serial-vs-dispatch comparison
   (:func:`repro.planner.parallel_gate`), or the fixed ``min_tuples``
   constant when the planner is off; either way small workloads never
   pay partition + pickle + merge, and ``min_tuples=0`` force-enables.
2. **Partition** — cone-partition the distinct routed items
   (:func:`repro.parallel.partition.partition_items`); a workload that
   does not decompose (single cone, oversized residual) declines here.
3. **Dispatch** — build one :class:`ShardSnapshot` per bin and run the
   shard tasks on the pool (inline for one worker).
4. **Merge** — per-shard owned results are disjoint by construction, so
   the merge is a concatenation re-sorted by the full product's
   topological key: the exact insertion order of the serial sweep.
   Worker error markers are re-raised as the same exceptions the serial
   path raises.

Each ``maybe_*`` function returns ``None`` when the gate declines, and
the caller falls through to its serial code — the parallel layer is
strictly an accelerator, never a semantic fork.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core import bulk as _bulk
from repro.core.conflicts import Conflict
from repro.core.htuple import HTuple
from repro.core.relation import HRelation
from repro.errors import AmbiguityError, InconsistentRelationError
from repro.hierarchy.product import Item
from repro.obs import default_registry
from repro.obs import span as _span

from repro.parallel.config import config
from repro.parallel.partition import Partition, partition_items
from repro.parallel.snapshot import build_snapshots
from repro.parallel.worker import FN_TOKENS

#: Sentinel returned by :func:`maybe_extension` (with
#: ``raise_on_conflict=False``) when a shard hit a conflicted atom —
#: distinct from ``None`` ("gate declined, run serial").
CONFLICT = object()


@dataclass
class Plan:
    """What the gate + partitioner decided for one operation; the
    ``EXPLAIN`` renderer and the dispatchers both read it."""

    partition: Optional[Partition] = None
    reason: str = ""
    workers: int = 0
    strategy: object = None
    input_specs: Tuple[tuple, ...] = ()
    extra_seeds: Tuple[Item, ...] = ()

    @property
    def parallel(self) -> bool:
        return self.partition is not None

    @property
    def shards(self) -> int:
        return self.partition.shards if self.partition else 0

    @property
    def residual(self) -> int:
        return len(self.partition.residual) if self.partition else 0

    def describe(self) -> str:
        """The one-line summary ``EXPLAIN`` prints."""
        if self.parallel:
            return "shards={} residual={}".format(self.shards, self.residual)
        return "serial ({})".format(self.reason)


def _pad(item: Item, positions: Sequence[int], top: Item) -> Item:
    padded = list(top)
    for position, value in zip(positions, item):
        padded[position] = value
    return tuple(padded)


def _worker_active() -> bool:
    from repro.parallel import worker

    return worker._ACTIVE


def plan(
    schema,
    input_specs: Sequence[tuple],
    extra_seeds: Sequence[Item] = (),
    fn_token: Optional[str] = None,
    capture=None,
) -> Plan:
    """Gate + partition; never dispatches.  ``input_specs`` entries are
    ``("full", relation)``, ``("proj", relation, positions)`` or
    ``("cone", item)``."""
    cfg = config()
    if cfg.workers < 1:
        return Plan(reason="disabled")
    if _worker_active():
        return Plan(reason="inside a worker")
    if capture is not None:
        return Plan(reason="capture hook requested")
    if fn_token is not None and fn_token not in FN_TOKENS:
        return Plan(reason="combining function is not shippable")
    product = schema.product
    if product.has_preference_edges() or product.needs_elimination_binding():
        return Plan(reason="hierarchy needs per-item binding")

    top = product.top
    routed: Set[Item] = set()
    total = 0
    for spec in input_specs:
        if spec[0] == "cone":
            continue
        relation = spec[1]
        total += len(relation.asserted)
        positions = spec[2] if spec[0] == "proj" else None
        for item in relation.asserted:
            routed.add(item if positions is None else _pad(item, positions, top))
    if cfg.min_tuples > 0:
        # ``min_tuples=0`` force-enables (tests and benchmarks rely on
        # it); otherwise the planner's priced serial-vs-dispatch
        # comparison replaces the fixed constant, which survives only
        # as the REPRO_PLANNER=0 legacy gate.
        from repro import planner as _planner

        if _planner.enabled():
            worthwhile, why = _planner.parallel_gate(total, len(input_specs))
            if not worthwhile:
                return Plan(reason=why)
        elif total < cfg.min_tuples:
            return Plan(reason="below threshold")

    items = product.topological_sort(routed)
    partition, why = partition_items(
        schema,
        items,
        workers=cfg.workers,
        forced_residual=tuple(extra_seeds),
        residual_limit=cfg.residual_limit,
        fanout=cfg.fanout,
    )
    if partition is None:
        return Plan(reason=why)
    return Plan(
        partition=partition,
        workers=cfg.workers,
        input_specs=tuple(input_specs),
        extra_seeds=tuple(extra_seeds),
    )


def _declined(operation_plan: Plan) -> None:
    if operation_plan.reason not in ("disabled", "inside a worker"):
        default_registry().counter("parallel.fallbacks").inc()


def _dispatch(span_name: str, tasks: List[dict], workers: int) -> List[dict]:
    from repro.parallel import pool as _pool

    registry = default_registry()
    registry.counter("parallel.ops").inc()
    registry.counter("parallel.shards").inc(len(tasks))
    results = _pool.run_tasks(tasks, workers)
    elapsed = [r.get("elapsed_ms", 0.0) for r in results]
    if elapsed:
        registry.histogram("parallel.skew.ms").observe(
            max(elapsed) - min(elapsed)
        )
    for result in results:
        with _span(
            span_name + ".shard",
            shard=result.get("shard"),
            elapsed_ms=round(result.get("elapsed_ms", 0.0), 3),
            ok=result["ok"],
        ):
            pass
    return results


def _owned_inconsistency(results: Sequence[dict], owner_of) -> Optional[Item]:
    """The first genuinely conflicted item: one a shard reported *and*
    owns.  Non-owner reports are spurious (incomplete applicable sets)."""
    for result in results:
        for item in result.get("inconsistent", ()):
            if owner_of(item) == result["shard"]:
                return tuple(item)
    return None


def maybe_pointwise(
    schema,
    strategy,
    input_specs: Sequence[tuple],
    fn_token: str,
    name: str,
    extra_seeds: Sequence[Item] = (),
    consolidate: bool = True,
    capture=None,
) -> Optional[HRelation]:
    """Parallel pointwise combinator, or ``None`` for the serial path."""
    operation_plan = plan(
        schema, input_specs, extra_seeds, fn_token=fn_token, capture=capture
    )
    if not operation_plan.parallel:
        _declined(operation_plan)
        return None
    partition = operation_plan.partition
    with _span(
        "parallel.pointwise",
        shards=partition.shards,
        residual=len(partition.residual),
        fn=fn_token,
    ) as sp:
        snapshots = build_snapshots(
            schema, strategy.name, input_specs, partition, extra_seeds,
            skip_roots=True,
        )
        tasks = [
            {
                "kind": "pointwise",
                "snapshot": snapshot,
                "fn_token": fn_token,
                "consolidate": consolidate,
            }
            for snapshot in snapshots
        ]
        results = _dispatch("parallel.pointwise", tasks, operation_plan.workers)
        owner_of = partition.owner_map(schema)
        conflicted = _owned_inconsistency(results, owner_of)
        if conflicted is not None:
            raise InconsistentRelationError(
                [Conflict(item=conflicted, binders=())]
            )
        merged = _bulk.merge_emitted(
            schema.product,
            [
                [
                    (item, truth)
                    for item, truth in result["emitted"]
                    if owner_of(item) == result["shard"]
                ]
                for result in results
            ],
        )
        out = HRelation(schema, name=name, strategy=strategy)
        for item, truth in merged:
            out.assert_item(item, truth=truth)
        sp.annotate(tuples_out=len(out))
        return out


def maybe_combine(
    relations: Sequence[HRelation],
    fn_token: str,
    name: str,
    extra_items: Sequence[Item] = (),
    consolidate: bool = True,
    capture=None,
) -> Optional[HRelation]:
    return maybe_pointwise(
        relations[0].schema,
        relations[0].strategy,
        [("full", relation) for relation in relations],
        fn_token,
        name,
        extra_seeds=tuple(extra_items),
        consolidate=consolidate,
        capture=capture,
    )


def maybe_select(
    relation: HRelation,
    cone_item: Item,
    name: str,
    consolidate: bool = True,
    capture=None,
) -> Optional[HRelation]:
    return maybe_pointwise(
        relation.schema,
        relation.strategy,
        [("full", relation), ("cone", cone_item)],
        "and",
        name,
        extra_seeds=(cone_item,),
        consolidate=consolidate,
        capture=capture,
    )


def maybe_join(
    left: HRelation,
    right: HRelation,
    merged_schema,
    name: str,
    consolidate: bool = True,
) -> Optional[HRelation]:
    """Parallel zero-copy join (callers have already verified both
    evaluators are sweep-exact under off-path preemption)."""
    left_positions = tuple(
        merged_schema.index_of(a) for a in left.schema.attributes
    )
    right_positions = tuple(
        merged_schema.index_of(a) for a in right.schema.attributes
    )
    return maybe_pointwise(
        merged_schema,
        left.strategy,
        [("proj", left, left_positions), ("proj", right, right_positions)],
        "and",
        name,
        consolidate=consolidate,
    )


def maybe_extension(relation, raise_on_conflict: bool = True):
    """Parallel flat extension: a sorted list of atoms, ``None`` when
    the gate declines, or :data:`CONFLICT` when a shard hit a conflicted
    atom and ``raise_on_conflict`` is off (``explicate`` then reruns the
    legacy writer-order algorithm, exactly as serial does)."""
    operation_plan = plan(relation.schema, [("full", relation)])
    if not operation_plan.parallel:
        _declined(operation_plan)
        return None
    partition = operation_plan.partition
    with _span(
        "parallel.extension",
        shards=partition.shards,
        residual=len(partition.residual),
    ) as sp:
        snapshots = build_snapshots(
            relation.schema, relation.strategy.name, [("full", relation)],
            partition,
        )
        tasks = [
            {"kind": "extension", "snapshot": snapshot}
            for snapshot in snapshots
        ]
        results = _dispatch("parallel.extension", tasks, operation_plan.workers)
        owner_of = partition.owner_map(relation.schema)
        for result in results:
            for atom, binders in result.get("ambiguous", ()):
                if owner_of(atom) != result["shard"]:
                    continue
                if not raise_on_conflict:
                    return CONFLICT
                raise AmbiguityError(
                    tuple(atom),
                    [(tuple(binder), truth) for binder, truth in binders],
                )
        product = relation.schema.product
        atoms: List[Item] = []
        for result in results:
            atoms.extend(
                tuple(atom)
                for atom in result["atoms"]
                if owner_of(atom) == result["shard"]
            )
        atoms = product.topological_sort(atoms)
        sp.annotate(atoms=len(atoms))
        return atoms


def maybe_conflicts(relation) -> Optional[List[Conflict]]:
    """Parallel conflict scan, or ``None`` for the serial path."""
    operation_plan = plan(relation.schema, [("full", relation)])
    if not operation_plan.parallel:
        _declined(operation_plan)
        return None
    partition = operation_plan.partition
    with _span(
        "parallel.conflicts",
        shards=partition.shards,
        residual=len(partition.residual),
    ) as sp:
        snapshots = build_snapshots(
            relation.schema, relation.strategy.name, [("full", relation)],
            partition,
        )
        tasks = [
            {"kind": "conflicts", "snapshot": snapshot}
            for snapshot in snapshots
        ]
        results = _dispatch("parallel.conflicts", tasks, operation_plan.workers)
        owner_of = partition.owner_map(relation.schema)
        product = relation.schema.product
        reverse = relation.strategy.name == "none"
        out: List[Conflict] = []
        for result in results:
            for item, binders in result["conflicts"]:
                if owner_of(item) != result["shard"]:
                    continue
                ordered = sorted(
                    (tuple(binder) for binder, _ in binders),
                    key=product.topological_key,
                    reverse=reverse,
                )
                truth_of = {tuple(b): t for b, t in binders}
                out.append(
                    Conflict(
                        item=tuple(item),
                        binders=tuple(
                            HTuple(binder, truth_of[binder])
                            for binder in ordered
                        ),
                    )
                )
        out.sort(key=lambda conflict: product.topological_key(conflict.item))
        sp.annotate(conflicts=len(out))
        return out
