"""Worker-side shard execution.

A worker receives one :class:`~repro.parallel.snapshot.ShardSnapshot`
per task, rebuilds *real* :class:`Hierarchy` / :class:`RelationSchema` /
:class:`HRelation` objects from it, and runs the stock serial machinery
— :class:`~repro.core.bulk.BulkEvaluator` sweeps, the fused redundancy
sweep, the conflict probe — over the shard.  The rebuilt
sub-hierarchies preserve subsumption, paths, meets and leaf status for
every value the shard can touch, so the shard's computation is the
serial computation restricted to the shard's cone.

Workers make **no ownership decisions**: they return everything they
compute and the coordinator keeps each item only from its authoritative
shard (:meth:`~repro.parallel.partition.Partition.owner_map`).  A shard
cannot judge ownership itself — an item reached only through a residual
tuple's cone looks component-free inside the shard's sub-hierarchy even
when its component seeds live in another shard's group — and for the
same reason a shard's truth for a *non-owned* item may be wrong (its
applicable set is only complete in the owner's shard).  So conflicts
are reported, not raised: a ``None`` truth is only genuine if the
coordinator finds it in the item's owner shard.

Tasks and results are plain dicts so the process boundary stays cheap.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Dict, List, Optional, Tuple

from repro.core import bulk as _bulk
from repro.core.consolidate import redundancy_sweep
from repro.core.preemption import STRATEGIES
from repro.core.relation import HRelation
from repro.core.schema import RelationSchema
from repro.hierarchy.graph import Hierarchy
from repro.hierarchy.product import Item

from repro.parallel.snapshot import ShardSnapshot

#: True while this process is executing a shard task.  The coordinator
#: gate checks it so operations run *inside* a worker (the conflict
#: probe, evaluator delegation) never try to re-partition and recurse.
_ACTIVE = False


def _fn_any(*truths: bool) -> bool:
    return any(truths)


def _fn_all(*truths: bool) -> bool:
    return all(truths)


def _fn_andnot(a: bool, b: bool) -> bool:
    return a and not b


#: The picklable stand-ins for the algebra's combining lambdas.  An
#: operation whose ``fn`` has no token here falls back to serial at the
#: coordinator gate — it never reaches a worker.
FN_TOKENS = {
    "or": _fn_any,
    "any": _fn_any,
    "and": _fn_all,
    "all": _fn_all,
    "andnot": _fn_andnot,
}


class _ShardContext:
    """The rebuilt shard: schema, input evaluators, closure seeds."""

    def __init__(self, snapshot: ShardSnapshot) -> None:
        self.snapshot = snapshot
        hierarchies: Dict[str, Hierarchy] = {
            key: Hierarchy.from_subgraph_payload(payload)
            for key, payload in snapshot.hierarchies.items()
        }
        self.schema = RelationSchema(
            [
                (attribute, hierarchies[key])
                for attribute, key in zip(
                    snapshot.attributes, snapshot.hierarchy_keys
                )
            ]
        )
        self.strategy = STRATEGIES[snapshot.strategy]
        top = self.schema.product.top

        self.evaluators: List[object] = []
        self.relations: List[Optional[HRelation]] = []
        self.seeds: set = set(snapshot.extra_seeds)
        for n, shard_input in enumerate(snapshot.inputs):
            if shard_input.cone is not None:
                self.evaluators.append(
                    _bulk.ConeEvaluator(self.schema.product, shard_input.cone)
                )
                self.relations.append(None)
                continue
            positions = shard_input.positions
            if positions is None:
                in_schema = self.schema
            else:
                in_schema = RelationSchema(
                    [
                        (snapshot.attributes[p], hierarchies[snapshot.hierarchy_keys[p]])
                        for p in positions
                    ]
                )
            strategy = STRATEGIES[shard_input.strategy or snapshot.strategy]
            relation = HRelation(
                in_schema, name="shard{}_in{}".format(snapshot.shard, n),
                strategy=strategy,
            )
            signs = _bulk.mask_from_bytes(shard_input.signs)
            for i, item in enumerate(shard_input.items):
                relation.assert_item(item, truth=bool(signs >> i & 1))
            evaluator = _bulk.evaluator_for(relation)
            if positions is None:
                self.evaluators.append(evaluator)
                self.seeds.update(shard_input.items)
            else:
                self.evaluators.append(
                    _bulk.ProjectedEvaluator(evaluator, positions)
                )
                for item in shard_input.items:
                    padded = list(top)
                    for position, value in zip(positions, item):
                        padded[position] = value
                    self.seeds.add(tuple(padded))
            self.relations.append(relation)


def _pointwise(context: _ShardContext, task: dict) -> dict:
    fn = FN_TOKENS[task["fn_token"]]
    product = context.schema.product
    candidates = product.topological_sort(product.meet_closure(context.seeds))
    truths: List[bool] = []
    inconsistent: List[Item] = []
    for item in candidates:
        row: List[bool] = []
        conflicted = False
        for evaluator in context.evaluators:
            truth = evaluator.truth(item)
            if truth is None:
                # Genuine only if this shard owns the item — the
                # coordinator decides; meanwhile evaluate as false (the
                # owner's copy, not this one, is what gets emitted).
                inconsistent.append(item)
                conflicted = True
                break
            row.append(truth)
        truths.append(False if conflicted else fn(*row))
    if task["consolidate"] and not product.needs_elimination_binding():
        flags = redundancy_sweep(context.schema, candidates, truths)
    else:
        flags = [False] * len(candidates)
    emitted = [
        (item, truth)
        for item, truth, redundant in zip(candidates, truths, flags)
        if not redundant
    ]
    return {
        "ok": True,
        "shard": context.snapshot.shard,
        "emitted": emitted,
        "inconsistent": inconsistent,
        "candidates": len(candidates),
    }


def _extension(context: _ShardContext) -> dict:
    relation = context.relations[0]
    evaluator = _bulk.evaluator_for(relation)
    product = context.schema.product
    seen = set()
    atoms: List[Item] = []
    ambiguous: List[Tuple[Item, List[Tuple[Item, bool]]]] = []
    for item, truth in relation.asserted.items():
        if not truth:
            continue
        for atom in product.leaves_under(item):
            if atom in seen:
                continue
            seen.add(atom)
            answer = evaluator.truth(atom)
            if answer is None:
                _, binders = evaluator.truth_and_binders(atom)
                ambiguous.append(
                    (atom, [(b.item, b.truth) for b in binders])
                )
            elif answer:
                atoms.append(atom)
    return {
        "ok": True,
        "shard": context.snapshot.shard,
        "atoms": atoms,
        "ambiguous": ambiguous,
        "candidates": len(seen),
    }


def _conflicts(context: _ShardContext) -> dict:
    from repro.core.conflicts import find_conflicts

    relation = context.relations[0]
    found = [
        (conflict.item, [(b.item, b.truth) for b in conflict.binders])
        for conflict in find_conflicts(relation)
    ]
    return {
        "ok": True,
        "shard": context.snapshot.shard,
        "conflicts": found,
    }


def run_shard_task(task: dict) -> dict:
    """Execute one shard task; always returns a result dict."""
    global _ACTIVE
    kind = task["kind"]
    if kind == "crash":  # test hook: simulate a dying worker process
        os.kill(os.getpid(), signal.SIGKILL)
    started = time.perf_counter()
    _ACTIVE = True
    try:
        context = _ShardContext(task["snapshot"])
        if kind == "pointwise":
            result = _pointwise(context, task)
        elif kind == "extension":
            result = _extension(context)
        elif kind == "conflicts":
            result = _conflicts(context)
        else:
            raise ValueError("unknown shard task kind {!r}".format(kind))
    finally:
        _ACTIVE = False
    result["elapsed_ms"] = (time.perf_counter() - started) * 1000.0
    return result
