"""The shared worker pool.

One lazily-created, process-global :class:`ProcessPoolExecutor` serves
every parallel operation — fork start method by default on POSIX (the
workers inherit the interpreter state copy-on-write; hierarchies inside
snapshots still travel by pickle so ``spawn`` and ``forkserver`` work
identically, just slower to start).  ``REPRO_PARALLEL_START`` or
``configure(start_method=...)`` override it.

``workers == 1`` never touches the pool: the shard tasks run inline in
the calling process, so the full decomposition pipeline is measurable
(and testable) without fork or pickling costs.

A worker that dies mid-task (OOM kill, segfault, the test suite's
deliberate ``{"kind": "crash"}`` task) breaks the executor; the broken
pool is disposed and the failure surfaces as
:class:`~repro.errors.EngineError`.  Workers operate on immutable
snapshots, so the database is untouched — the caller may retry (a fresh
pool is created lazily) or fall back to serial execution.
"""

from __future__ import annotations

import atexit
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import List, Sequence

from repro.errors import EngineError
from repro.parallel import worker as _worker
from repro.parallel.config import config

_EXECUTOR: ProcessPoolExecutor | None = None
_EXECUTOR_WORKERS = 0


def _context():
    method = config().start_method
    if method is None:
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # platform without fork
            return multiprocessing.get_context()
    return multiprocessing.get_context(method)


def _executor(workers: int) -> ProcessPoolExecutor:
    global _EXECUTOR, _EXECUTOR_WORKERS
    if _EXECUTOR is None or _EXECUTOR_WORKERS != workers:
        shutdown()
        _EXECUTOR = ProcessPoolExecutor(
            max_workers=workers, mp_context=_context()
        )
        _EXECUTOR_WORKERS = workers
    return _EXECUTOR


def shutdown() -> None:
    """Dispose the pool (idempotent); the next parallel operation
    recreates it lazily."""
    global _EXECUTOR, _EXECUTOR_WORKERS
    if _EXECUTOR is not None:
        _EXECUTOR.shutdown(wait=False, cancel_futures=True)
        _EXECUTOR = None
        _EXECUTOR_WORKERS = 0


atexit.register(shutdown)


def run_tasks(tasks: Sequence[dict], workers: int) -> List[dict]:
    """Run shard tasks, inline for ``workers <= 1``, else on the pool.

    Results come back in task order.  A dead worker raises
    :class:`EngineError`; the database state is unaffected.
    """
    if workers <= 1:
        return [_worker.run_shard_task(task) for task in tasks]
    pool = _executor(workers)
    try:
        futures = [pool.submit(_worker.run_shard_task, task) for task in tasks]
        return [future.result() for future in futures]
    except BrokenProcessPool as exc:
        shutdown()
        raise EngineError(
            "a parallel worker process died mid-task; the database is "
            "unchanged (workers only read immutable snapshots) — retry, "
            "or SET PARALLEL 0 to fall back to serial execution"
        ) from exc
