"""Convenience constructors for hierarchies.

Building a taxonomy node by node is verbose; these helpers let examples,
tests, and workloads declare one as a nested dict or an edge list.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Tuple, Union

from repro.errors import HierarchyError
from repro.hierarchy.graph import Hierarchy

NestedSpec = Mapping[str, Union["NestedSpec", Sequence[str], None]]


class HierarchyBuilder:
    """Fluent builder for a :class:`Hierarchy`.

    Examples
    --------
    >>> h = (HierarchyBuilder("animal")
    ...      .klass("bird")
    ...      .klass("penguin", under="bird")
    ...      .instance("tweety", under="bird")
    ...      .build())
    >>> sorted(h.children("bird"))
    ['penguin', 'tweety']
    """

    def __init__(self, name: str, root: str | None = None) -> None:
        self._hierarchy = Hierarchy(name, root=root)

    def klass(self, name: str, under: Union[str, Sequence[str], None] = None) -> "HierarchyBuilder":
        """Add a class; ``under`` may be a single parent or a sequence."""
        self._hierarchy.add_class(name, parents=self._parents(under))
        return self

    def instance(self, name: str, under: Union[str, Sequence[str], None] = None) -> "HierarchyBuilder":
        """Add an instance (leaf)."""
        self._hierarchy.add_instance(name, parents=self._parents(under))
        return self

    def edge(self, parent: str, child: str) -> "HierarchyBuilder":
        """Add an extra subclass edge between existing nodes (multiple
        inheritance)."""
        self._hierarchy.add_edge(parent, child)
        return self

    def prefer(self, stronger: str, over: str) -> "HierarchyBuilder":
        """Add an appendix-style preference edge: ``stronger`` preempts
        ``over`` wherever both apply."""
        self._hierarchy.add_preference_edge(over, stronger)
        return self

    def build(self) -> Hierarchy:
        return self._hierarchy

    @staticmethod
    def _parents(under: Union[str, Sequence[str], None]) -> Sequence[str] | None:
        if under is None:
            return None
        if isinstance(under, str):
            return [under]
        return list(under)


def hierarchy_from_dict(
    name: str,
    spec: NestedSpec,
    root: str | None = None,
    instances: Iterable[str] = (),
) -> Hierarchy:
    """Build a hierarchy from a nested mapping.

    Each key is a class placed under the current parent; its value is
    either another mapping (sub-classes), a sequence of leaf names, or
    ``None``.  Names listed in ``instances`` are registered as instances
    rather than childless classes.  A name may appear under several
    parents; the second and later appearances become extra edges
    (multiple inheritance).

    Examples
    --------
    >>> h = hierarchy_from_dict("animal", {
    ...     "bird": {"canary": ["tweety"], "penguin": None},
    ... }, instances=["tweety"])
    >>> h.subsumes("bird", "tweety")
    True
    """
    hierarchy = Hierarchy(name, root=root)
    instance_names = set(instances)

    def place(child: str, parent: str) -> None:
        if child in hierarchy:
            hierarchy.add_edge(parent, child)
        elif child in instance_names:
            hierarchy.add_instance(child, parents=[parent])
        else:
            hierarchy.add_class(child, parents=[parent])

    def walk(mapping: NestedSpec, parent: str) -> None:
        for child, sub in mapping.items():
            place(child, parent)
            if sub is None:
                continue
            if isinstance(sub, Mapping):
                walk(sub, child)
            else:
                for leaf in sub:
                    place(leaf, child)

    walk(spec, hierarchy.root)
    return hierarchy


def hierarchy_from_edges(
    name: str,
    edges: Iterable[Tuple[str, str]],
    root: str | None = None,
    instances: Iterable[str] = (),
) -> Hierarchy:
    """Build a hierarchy from ``(parent, child)`` pairs.

    Parents must be introduced before they are used as parents, except
    for the root, which exists from the start.  Every node reachable
    nowhere from the root is rejected, keeping the graph rooted.
    """
    hierarchy = Hierarchy(name, root=root)
    instance_names = set(instances)
    for parent, child in edges:
        if parent not in hierarchy:
            raise HierarchyError(
                "edge ({0!r}, {1!r}) uses parent {0!r} before it was defined".format(
                    parent, child
                )
            )
        if child in hierarchy:
            hierarchy.add_edge(parent, child)
        elif child in instance_names:
            hierarchy.add_instance(child, parents=[parent])
        else:
            hierarchy.add_class(child, parents=[parent])
    return hierarchy
