"""Pure graph algorithms over adjacency-dict digraphs.

Every function here operates on a plain ``dict[node, set[node] | list]``
mapping each node to its successors (children).  Nothing in this module
knows about classes, tuples, or relations; the :class:`~repro.hierarchy.
graph.Hierarchy` and the binding-graph machinery build on these
primitives.

The one paper-specific algorithm is :func:`eliminate_node`, the *node
elimination procedure* of section 2.1, used to derive subsumption graphs
and tuple-binding graphs from a hierarchy graph.  Its ``keep_redundant``
flag switches between the paper's default behaviour (off-path
preemption: never introduce an edge parallel to an existing path) and
the appendix's on-path variant (always reconnect predecessor to
successor).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.errors import CycleError

Node = Hashable
Digraph = Dict[Node, Set[Node]]


def copy_graph(graph: Dict[Node, Iterable[Node]]) -> Digraph:
    """Deep-copy an adjacency mapping into ``dict[node, set]`` form.

    Nodes that appear only as successors are promoted to keys so that the
    result is *closed*: every node mentioned anywhere is a key.
    """
    out: Digraph = {node: set(succs) for node, succs in graph.items()}
    for succs in list(out.values()):
        for node in succs:
            out.setdefault(node, set())
    return out


def invert(graph: Dict[Node, Iterable[Node]]) -> Digraph:
    """Return the reverse graph (edges flipped)."""
    out: Digraph = {node: set() for node in graph}
    for node, succs in graph.items():
        for succ in succs:
            out.setdefault(succ, set()).add(node)
            out.setdefault(node, set())
    return out


def topological_order(
    graph: Dict[Node, Iterable[Node]],
    tie_break: Sequence[Node] | None = None,
) -> List[Node]:
    """Kahn topological order of ``graph``; raises :class:`CycleError` on a cycle.

    ``tie_break`` fixes the order in which same-depth nodes are emitted
    (first-come in the sequence wins), which makes every downstream
    construction — subsumption graphs, consolidation — deterministic.
    """
    closed = copy_graph(graph)
    indegree: Dict[Node, int] = {node: 0 for node in closed}
    for succs in closed.values():
        for succ in succs:
            indegree[succ] += 1
    if tie_break is None:
        rank = {node: i for i, node in enumerate(closed)}
    else:
        rank = {node: i for i, node in enumerate(tie_break)}
        for node in closed:
            rank.setdefault(node, len(rank))

    ready = sorted((node for node, deg in indegree.items() if deg == 0), key=rank.__getitem__)
    queue = deque(ready)
    order: List[Node] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        newly_ready = []
        for succ in closed[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                newly_ready.append(succ)
        for succ in sorted(newly_ready, key=rank.__getitem__):
            queue.append(succ)
    if len(order) != len(closed):
        stuck = sorted(
            (str(node) for node, deg in indegree.items() if deg > 0), key=str
        )
        raise CycleError("graph contains a cycle through: {}".format(", ".join(stuck)))
    return order


def find_cycle(graph: Dict[Node, Iterable[Node]]) -> List[Node] | None:
    """Return one directed cycle as a node list, or ``None`` if acyclic."""
    closed = copy_graph(graph)
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in closed}
    parent: Dict[Node, Node] = {}
    for start in closed:
        if color[start] != WHITE:
            continue
        stack = [(start, iter(closed[start]))]
        color[start] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if color[succ] == WHITE:
                    color[succ] = GREY
                    parent[succ] = node
                    stack.append((succ, iter(closed[succ])))
                    advanced = True
                    break
                if color[succ] == GREY:
                    cycle = [succ, node]
                    walker = node
                    while walker != succ:
                        walker = parent[walker]
                        cycle.append(walker)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[node] = BLACK
                stack.pop()
        # fallthrough: this component is acyclic
    return None


def reachable_from(graph: Dict[Node, Iterable[Node]], start: Node) -> Set[Node]:
    """All nodes reachable from ``start`` (including ``start`` itself)."""
    closed = copy_graph(graph)
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for succ in closed.get(node, ()):
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return seen


def has_path(
    graph: Dict[Node, Iterable[Node]],
    source: Node,
    target: Node,
    avoiding: Iterable[Node] = (),
) -> bool:
    """True iff a directed path ``source -> target`` exists that visits no
    node in ``avoiding`` (endpoints are never excluded).

    The ``avoiding`` parameter is what makes on-path preemption checks
    ("does every path from j to x pass through i?") one call:
    ``not has_path(g, j, x, avoiding=[i])``.
    """
    if source == target:
        return True
    banned = set(avoiding) - {source, target}
    seen = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for succ in graph.get(node, ()):
            if succ == target:
                return True
            if succ not in seen and succ not in banned:
                seen.add(succ)
                queue.append(succ)
    return False


def transitive_closure(graph: Dict[Node, Iterable[Node]]) -> Digraph:
    """Closure: ``u -> v`` for every distinct pair with a path ``u ->* v``."""
    closed = copy_graph(graph)
    order = topological_order(closed)
    reach: Dict[Node, Set[Node]] = {}
    for node in reversed(order):
        acc: Set[Node] = set()
        for succ in closed[node]:
            acc.add(succ)
            acc |= reach[succ]
        reach[node] = acc
    return reach


def transitive_reduction(graph: Dict[Node, Iterable[Node]]) -> Digraph:
    """The unique transitive reduction of a DAG.

    The paper's off-path preemption assumes the hierarchy is its own
    transitive reduction ("we wish to retain only the transitive
    reduction of the hierarchy graph", appendix footnote 7); this is how
    a caller normalises an arbitrary DAG into that form.
    """
    closed = copy_graph(graph)
    redundant = redundant_edges(closed)
    return {
        node: {succ for succ in succs if (node, succ) not in redundant}
        for node, succs in closed.items()
    }


def redundant_edges(graph: Dict[Node, Iterable[Node]]) -> Set[Tuple[Node, Node]]:
    """Edges ``(u, v)`` for which a longer path ``u ->* v`` also exists.

    Such edges change binding semantics (appendix: a redundant link from
    Penguin to Pamela creates a conflict at Pamela), so the hierarchy
    reports them and the binding machinery falls back from the fast
    subsumption-order path to full node elimination when any exist.
    """
    closed = copy_graph(graph)
    reach = transitive_closure(closed)
    redundant: Set[Tuple[Node, Node]] = set()
    for node, succs in closed.items():
        for succ in succs:
            for other in succs:
                if other != succ and succ in reach[other]:
                    redundant.add((node, succ))
                    break
    return redundant


def induced_subgraph(graph: Dict[Node, Iterable[Node]], keep: Iterable[Node]) -> Digraph:
    """The subgraph on ``keep`` with only edges between kept nodes."""
    kept = set(keep)
    return {node: set(graph.get(node, ())) & kept for node in kept}


def eliminate_node(graph: Digraph, node: Node, keep_redundant: bool = False) -> None:
    """The paper's node-elimination procedure, in place (section 2.1).

    Delete ``node`` and its incident edges; then for each immediate
    predecessor ``j`` (taken in *reverse* topological order) and each
    immediate successor ``k`` (taken in topological order), add an edge
    ``j -> k`` unless a path ``j ->* k`` already exists after the
    deletion.  The prescribed processing order, plus the path check,
    guarantees no redundant edge is introduced.

    With ``keep_redundant=True`` the path check is skipped: every
    predecessor is wired to every successor, the construction the
    appendix prescribes for *on-path* preemption.
    """
    preds = [p for p, succs in graph.items() if node in succs]
    succs = list(graph.get(node, ()))
    for p in preds:
        graph[p].discard(node)
    graph.pop(node, None)
    if not preds or not succs:
        return
    order = topological_order(graph)
    rank = {n: i for i, n in enumerate(order)}
    preds.sort(key=rank.__getitem__, reverse=True)
    succs.sort(key=rank.__getitem__)
    for j in preds:
        for k in succs:
            if keep_redundant or not has_path(graph, j, k):
                graph[j].add(k)


def eliminate_nodes(
    graph: Digraph,
    nodes: Iterable[Node],
    keep_redundant: bool = False,
) -> Digraph:
    """Eliminate ``nodes`` one at a time, in topological order, returning
    the mutated graph (a convenience wrapper over :func:`eliminate_node`).

    Eliminating in topological order keeps the procedure deterministic;
    when the input graph is transitively reduced the result is
    order-independent anyway.
    """
    rank = {n: i for i, n in enumerate(topological_order(graph))}
    for node in sorted(nodes, key=rank.__getitem__):
        eliminate_node(graph, node, keep_redundant=keep_redundant)
    return graph


def immediate_predecessors(graph: Dict[Node, Iterable[Node]], node: Node) -> Set[Node]:
    """The set of nodes with an edge into ``node``."""
    return {p for p, succs in graph.items() if node in succs}


def is_antichain(
    ancestors_of: Dict[Node, Set[Node]], nodes: Iterable[Node]
) -> bool:
    """True iff no element of ``nodes`` is an ancestor of another, given a
    precomputed strict-ancestor map."""
    pool = set(nodes)
    return all(not (ancestors_of[n] & pool) for n in pool)
