"""Hierarchy graphs: the taxonomies the data model inherits over.

This package implements section 2.1's *hierarchy graph* — a rooted
directed acyclic graph with the domain at the root, edges from each more
general class to its more specific derived classes, and instances at the
leaves — together with the graph algorithms the paper's constructions
need (topological order, reachability, transitive reduction, the
node-elimination procedure) and the lazily-evaluated cartesian *product*
hierarchy of section 2.2.
"""

from repro.hierarchy import algorithms
from repro.hierarchy.builder import (
    HierarchyBuilder,
    hierarchy_from_dict,
    hierarchy_from_edges,
)
from repro.hierarchy.graph import Hierarchy
from repro.hierarchy.product import ProductHierarchy

__all__ = [
    "Hierarchy",
    "ProductHierarchy",
    "HierarchyBuilder",
    "hierarchy_from_dict",
    "hierarchy_from_edges",
    "algorithms",
]
