"""Product (item) hierarchies — section 2.2.

An *item* of a multi-attribute relation is one node from each attribute's
hierarchy; the item hierarchy is the cartesian product of the attribute
hierarchy graphs, with an edge between two items iff they differ in
exactly one attribute and that attribute's values are joined by an edge.

The product graph grows geometrically with the number of attributes, and
the paper is explicit that its model avoids "an attendant geometric
growth" — so this class never materialises the product.  All queries
(subsumption, meets, parents, leaves) are answered componentwise; only
the *ancestor cone* of a single item is ever built explicitly, and only
by the slow node-elimination binding path, because that cone is the
product of per-attribute ancestor sets (small in practice).

Structural facts used throughout (proved componentwise):

* item ``a`` subsumes item ``b`` iff every component of ``a`` subsumes
  the corresponding component of ``b``;
* the meet set (maximal common descendants) of two items is the cartesian
  product of the per-attribute meet sets, and is empty iff any attribute's
  meet set is empty — the paper's optimistic disjointness;
* the product graph is transitively reduced iff every factor is: every
  product edge steps strictly down in exactly one component, so a
  parallel path can never leave the other components' values.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.errors import SchemaError, UnknownNodeError
from repro.hierarchy.graph import Hierarchy

Item = Tuple[str, ...]


class ProductHierarchy:
    """The lazily-evaluated cartesian product of attribute hierarchies."""

    def __init__(self, factors: Sequence[Hierarchy]) -> None:
        if not factors:
            raise SchemaError("a product hierarchy needs at least one factor")
        self.factors: Tuple[Hierarchy, ...] = tuple(factors)

    @property
    def arity(self) -> int:
        return len(self.factors)

    @property
    def top(self) -> Item:
        """The root item: the tuple of the factor roots (the full domain D*)."""
        return tuple(h.root for h in self.factors)

    @property
    def version(self) -> Tuple[int, ...]:
        return tuple(h.version for h in self.factors)

    # ------------------------------------------------------------------
    # membership / validation
    # ------------------------------------------------------------------

    def check_item(self, item: Sequence[str]) -> Item:
        """Validate arity and per-attribute node existence; return a tuple."""
        values = tuple(item)
        if len(values) != self.arity:
            raise SchemaError(
                "item {} has arity {}, expected {}".format(values, len(values), self.arity)
            )
        for value, hierarchy in zip(values, self.factors):
            if value not in hierarchy:
                raise UnknownNodeError(
                    "unknown node {!r} in hierarchy {!r}".format(value, hierarchy.name)
                )
        return values

    def __contains__(self, item: object) -> bool:
        try:
            self.check_item(item)  # type: ignore[arg-type]
        except (SchemaError, UnknownNodeError, TypeError):
            return False
        return True

    # ------------------------------------------------------------------
    # order
    # ------------------------------------------------------------------

    def subsumes(self, general: Item, specific: Item) -> bool:
        """Reflexive componentwise subsumption: ``specific ⊆ general``."""
        return all(
            h.subsumes(g, s) for h, g, s in zip(self.factors, general, specific)
        )

    def strictly_subsumes(self, general: Item, specific: Item) -> bool:
        return general != specific and self.subsumes(general, specific)

    def binding_subsumes(self, general: Item, specific: Item) -> bool:
        """Subsumption in the binding order (preference edges included)."""
        return all(
            h.binding_subsumes(g, s) for h, g, s in zip(self.factors, general, specific)
        )

    def is_leaf(self, item: Item) -> bool:
        """True iff the item is *atomic*: every component is a leaf."""
        return all(h.is_leaf(v) for h, v in zip(self.factors, item))

    def meet(self, a: Item, b: Item) -> List[Item]:
        """The maximal common descendants of items ``a`` and ``b``.

        Componentwise: the cartesian product of per-attribute meet sets;
        empty as soon as any attribute pair shares no descendant.  Each
        component meet is a lookup in the factor's memoised meet table
        after the first probe of that value pair.
        """
        per_attribute: List[List[str]] = []
        for h, va, vb in zip(self.factors, a, b):
            meets = h.maximal_common_descendants(va, vb)
            if not meets:
                return []
            per_attribute.append(meets)
        return [tuple(combo) for combo in itertools.product(*per_attribute)]

    def meet_closure(self, items: Iterable[Item]) -> Set[Item]:
        """The smallest superset of ``items`` closed under pairwise meets.

        Unary products delegate to the factor's bulk closed-value-set
        sweep (:meth:`Hierarchy.meet_closed_values`): no item pairs are
        enumerated at all.  Higher arities probe only the pairs that can
        possibly meet: each round, one :meth:`Hierarchy.overlap_union`
        sweep per attribute tells every pool item which earlier items
        share a descendant with it on that attribute, and the AND across
        attributes is exactly the pairs with a non-empty product meet.
        Disjoint-heavy pools (stored relations mostly are) therefore
        cost O(attributes · (V + E)) per round instead of a quadratic
        pair scan, and each surviving probe hits the factors' memoised
        meet tables.
        """
        pool: Set[Item] = set(items)
        if not pool:
            return pool
        if self.arity == 1:
            factor = self.factors[0]
            return {(value,) for value in factor.meet_closed_values(v for (v,) in pool)}
        order: List[Item] = list(pool)
        start = 0
        while start < len(order):
            frontier = len(order)
            partner_masks = self._partner_masks(order[:frontier])
            for j in range(start, frontier):
                new = order[j]
                partners = partner_masks[j] & ((1 << j) - 1)
                while partners:
                    low = partners & -partners
                    partners ^= low
                    for met in self.meet(new, order[low.bit_length() - 1]):
                        if met not in pool:
                            pool.add(met)
                            order.append(met)
            start = frontier
        return pool

    def _partner_masks(self, items: Sequence[Item]) -> List[int]:
        """Per item, the bitset of ``items`` whose meet with it can be
        non-empty: the AND over attributes of the overlap-union masks at
        the item's component values."""
        out: List[int] = []
        for position, factor in enumerate(self.factors):
            seed: Dict[str, int] = {}
            for i, item in enumerate(items):
                value = item[position]
                seed[value] = seed.get(value, 0) | (1 << i)
            overlap = factor.overlap_union(seed)
            if position == 0:
                out = [overlap[item[0]] for item in items]
            else:
                for i, item in enumerate(items):
                    out[i] &= overlap[item[position]]
        return out

    def topological_key(self, item: Item):
        """A sort key realising a linear extension of the subsumption
        order: ancestors always sort before descendants.

        Per attribute a topological rank puts every ancestor before its
        descendants; comparing the rank tuples lexicographically therefore
        orders ``a`` before ``b`` whenever ``a`` strictly subsumes ``b``.
        """
        return tuple(h.topological_rank(v) for h, v in zip(self.factors, item))

    def topological_sort(
        self, items: Iterable[Item], reverse: bool = False
    ) -> List[Item]:
        """``sorted(items, key=self.topological_key)``, with the
        per-factor rank dicts bound once up front.  Use this on hot
        paths: :meth:`topological_key` re-resolves every factor's rank
        table per item, which dominates large candidate sorts."""
        ranks = [h.topological_ranks() for h in self.factors]
        if self.arity == 1:
            first = ranks[0]
            key = lambda item: first[item[0]]  # noqa: E731
        else:
            key = lambda item: tuple(  # noqa: E731
                rank[value] for rank, value in zip(ranks, item)
            )
        return sorted(items, key=key, reverse=reverse)

    # ------------------------------------------------------------------
    # neighbourhood / cones
    # ------------------------------------------------------------------

    def parents(self, item: Item) -> List[Item]:
        """Immediate predecessors of ``item`` in the product graph."""
        out: List[Item] = []
        for i, (h, v) in enumerate(zip(self.factors, item)):
            for parent in sorted(h.parents(v)):
                out.append(item[:i] + (parent,) + item[i + 1:])
        return out

    def children(self, item: Item) -> List[Item]:
        """Immediate successors of ``item`` in the product graph."""
        out: List[Item] = []
        for i, (h, v) in enumerate(zip(self.factors, item)):
            for child in sorted(h.children(v)):
                out.append(item[:i] + (child,) + item[i + 1:])
        return out

    def ancestors_or_self(self, item: Item) -> Iterator[Item]:
        """Every item subsuming ``item``: the product of per-attribute
        ancestor sets.  Beware: the cone size is the product of the
        per-attribute cone sizes."""
        cones = [sorted(h.ancestors(v)) for h, v in zip(self.factors, item)]
        return (tuple(combo) for combo in itertools.product(*cones))

    def cone_size(self, item: Item) -> int:
        """``len(list(self.ancestors_or_self(item)))`` without enumerating."""
        size = 1
        for h, v in zip(self.factors, item):
            size *= len(h.ancestors(v))
        return size

    def leaves_under(self, item: Item) -> Iterator[Item]:
        """The atomic items of ``item``'s cone (the extension of the class)."""
        per_attribute = [h.leaves_under(v) for h, v in zip(self.factors, item)]
        return (tuple(combo) for combo in itertools.product(*per_attribute))

    def count_leaves_under(self, item: Item) -> int:
        """The extension size of ``item`` without enumerating it."""
        count = 1
        for h, v in zip(self.factors, item):
            count *= len(h.leaves_under(v))
        return count

    def all_leaves(self) -> Iterator[Item]:
        """Every atomic item of the whole domain D*."""
        return self.leaves_under(self.top)

    def all_items(self) -> Iterator[Item]:
        """Every item of D* (use only on small universes, e.g. test oracles)."""
        per_attribute = [h.nodes() for h in self.factors]
        return (tuple(combo) for combo in itertools.product(*per_attribute))

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    def has_redundant_edges(self) -> bool:
        return any(not h.is_transitively_reduced() for h in self.factors)

    def has_preference_edges(self) -> bool:
        return any(h.has_preference_edges() for h in self.factors)

    def needs_elimination_binding(self) -> bool:
        """True when binding must run the full node-elimination procedure
        (redundant or preference edges present) instead of the fast
        subsumption-order shortcut."""
        return self.has_redundant_edges() or self.has_preference_edges()

    def cone_graph(self, item: Item, binding: bool = True) -> Dict[Item, Set[Item]]:
        """The induced product graph on ``ancestors_or_self(item)``.

        ``binding=True`` merges in preference edges (per factor).  This
        is the graph the node-elimination binding path works on; it is
        the only place the product structure is materialised.
        """
        if binding:
            adjacency = [h.binding_graph() for h in self.factors]
            cones = [
                self._binding_ancestors(h, adj, v)
                for h, adj, v in zip(self.factors, adjacency, item)
            ]
        else:
            adjacency = [h.class_graph() for h in self.factors]
            cones = [h.ancestors(v) for h, v in zip(self.factors, item)]
        nodes = [tuple(combo) for combo in itertools.product(*[sorted(c) for c in cones])]
        node_set = set(nodes)
        graph: Dict[Item, Set[Item]] = {node: set() for node in nodes}
        for node in nodes:
            for i, value in enumerate(node):
                for child in adjacency[i].get(value, ()):
                    succ = node[:i] + (child,) + node[i + 1:]
                    if succ in node_set:
                        graph[node].add(succ)
        return graph

    @staticmethod
    def _binding_ancestors(h: Hierarchy, adjacency: Dict[str, Set[str]], value: str) -> Set[str]:
        """Ancestors of ``value`` in the binding graph (class + preference)."""
        if not h.has_preference_edges():
            return h.ancestors(value)
        reverse: Dict[str, Set[str]] = {}
        for parent, children in adjacency.items():
            for child in children:
                reverse.setdefault(child, set()).add(parent)
        seen = {value}
        stack = [value]
        while stack:
            node = stack.pop()
            for parent in reverse.get(node, ()):
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
        return seen

    def __repr__(self) -> str:
        return "ProductHierarchy({})".format(", ".join(h.name for h in self.factors))
