"""The hierarchy graph of section 2.1.

A :class:`Hierarchy` is a rooted directed acyclic graph over string-named
nodes.  The root is the attribute *domain* itself; an edge runs from each
more general class to each more specific class derived from it; declared
*instances* sit at the leaves.  Following the paper (footnote 3) an
instance is just a singleton class: membership (``∈``) and subset (``⊆``)
are deliberately conflated, and both are answered by graph reachability.

Two structural rules from section 3.1 are enforced:

* **type irredundancy** — the graph must stay acyclic; any mutation that
  would close a cycle raises :class:`~repro.errors.CycleError`;
* every node other than the root has at least one parent (nodes are
  created under the root by default), so the graph stays rooted.

The appendix's *preference edges* — special edges that induce binding
strength without asserting set inclusion — are stored separately: they
participate in the *binding* order (used by preemption) but never in
membership, descendants, or explication.

Performance notes.  Reachability queries dominate every downstream
algorithm, so the hierarchy keeps lazily-built caches: a topological
order, per-node ancestor/descendant bitsets (Python ints indexed by node
rank), one family for the membership graph and one for the binding graph
(membership plus preference edges).  Caches are invalidated by a version
counter bumped on every mutation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.errors import (
    CycleError,
    DuplicateNodeError,
    HierarchyError,
    UnknownNodeError,
)
from repro.hierarchy import algorithms


class Hierarchy:
    """A rooted DAG of classes with instances at the leaves.

    Parameters
    ----------
    name:
        A label for the domain, e.g. ``"animal"``.  Used in rendering and
        schema error messages.
    root:
        The name of the root node (the whole domain).  Defaults to the
        hierarchy name.

    Examples
    --------
    >>> h = Hierarchy("animal")
    >>> h.add_class("bird")
    >>> h.add_class("penguin", parents=["bird"])
    >>> h.add_instance("tweety", parents=["bird"])
    >>> h.subsumes("bird", "tweety")
    True
    """

    def __init__(self, name: str, root: str | None = None) -> None:
        if not name:
            raise HierarchyError("hierarchy name must be non-empty")
        self.name = name
        self.root = root if root is not None else name
        self._children: Dict[str, Set[str]] = {self.root: set()}
        self._parents: Dict[str, Set[str]] = {self.root: set()}
        self._instances: Set[str] = set()
        self._pref_children: Dict[str, Set[str]] = {}
        self._pref_parents: Dict[str, Set[str]] = {}
        self._insertion: List[str] = [self.root]
        self._version = 0
        self._cache_version = -1
        self._cache: Dict[str, object] = {}
        # Linear caches the planner-side helpers can use without forcing
        # the O(n^2/64) bitset build in :meth:`_masks` (order/rank plus
        # the insertion rank) and the redundancy flag's own cache.
        self._order_version = -1
        self._order_cache: Tuple[List[str], Dict[str, int], Dict[str, int]] = ([], {}, {})
        self._redundant_version = -1
        self._redundant_cache: Set[Tuple[str, str]] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_class(self, name: str, parents: Sequence[str] | None = None) -> None:
        """Add a class under ``parents`` (default: directly under the root)."""
        self._add_node(name, parents)

    def add_instance(self, name: str, parents: Sequence[str] | None = None) -> None:
        """Add an instance (a leaf).  Instances may not later gain children."""
        self._add_node(name, parents)
        self._instances.add(name)

    def _add_node(self, name: str, parents: Sequence[str] | None) -> None:
        if not name:
            raise HierarchyError("node name must be non-empty")
        if name in self._children:
            raise DuplicateNodeError(
                "node {!r} already exists in hierarchy {!r}".format(name, self.name)
            )
        parent_list = list(parents) if parents is not None else [self.root]
        if not parent_list:
            raise HierarchyError(
                "node {!r} needs at least one parent (the hierarchy is rooted)".format(name)
            )
        for parent in parent_list:
            self._require(parent)
            if parent in self._instances:
                raise HierarchyError(
                    "cannot derive {!r} from instance {!r}: instances are leaves".format(
                        name, parent
                    )
                )
        self._children[name] = set()
        self._parents[name] = set()
        self._insertion.append(name)
        for parent in parent_list:
            self._children[parent].add(name)
            self._parents[name].add(parent)
        self._version += 1

    def add_edge(self, parent: str, child: str) -> None:
        """Declare ``child`` ⊆ ``parent`` between two existing nodes.

        Raises :class:`CycleError` if the edge would violate type
        irredundancy.  Adding an edge parallel to an existing path is
        legal (the appendix uses one deliberately) but flips the
        hierarchy out of transitively-reduced normal form, which switches
        binding computations onto the slower node-elimination path.
        """
        self._require(parent)
        self._require(child)
        if parent in self._instances:
            raise HierarchyError(
                "cannot derive {!r} from instance {!r}: instances are leaves".format(
                    child, parent
                )
            )
        if child == parent or self.subsumes(child, parent):
            raise CycleError(
                "edge {!r} -> {!r} would create a cycle (type irredundancy)".format(
                    parent, child
                )
            )
        self._children[parent].add(child)
        self._parents[child].add(parent)
        self._version += 1

    def add_preference_edge(self, weaker: str, stronger: str) -> None:
        """Add an appendix-style preference edge: tuples at ``stronger``
        preempt tuples at ``weaker`` wherever both apply.

        The edge shapes the tuple-binding graph exactly like a class edge
        from ``weaker`` to ``stronger`` would, but asserts no set
        inclusion: membership, descendants, and explication ignore it.
        """
        self._require(weaker)
        self._require(stronger)
        if weaker == stronger or self.binding_subsumes(stronger, weaker):
            raise CycleError(
                "preference edge {!r} -> {!r} would create a binding cycle".format(
                    weaker, stronger
                )
            )
        self._pref_children.setdefault(weaker, set()).add(stronger)
        self._pref_parents.setdefault(stronger, set()).add(weaker)
        self._version += 1

    def remove_node(self, name: str, keep_redundant: bool = False) -> None:
        """Remove ``name`` via the paper's node-elimination procedure,
        reconnecting its predecessors to its successors so that all other
        reachability is preserved."""
        self._require(name)
        if name == self.root:
            raise HierarchyError("cannot remove the root of a hierarchy")
        graph = {node: set(children) for node, children in self._children.items()}
        algorithms.eliminate_node(graph, name, keep_redundant=keep_redundant)
        self._children = graph
        self._parents = algorithms.invert(graph)
        self._instances.discard(name)
        self._insertion.remove(name)
        for table in (self._pref_children, self._pref_parents):
            table.pop(name, None)
            for targets in table.values():
                targets.discard(name)
        self._version += 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._children

    def __len__(self) -> int:
        return len(self._children)

    def __iter__(self) -> Iterator[str]:
        return iter(self._insertion)

    def nodes(self) -> List[str]:
        """All node names in insertion order (root first)."""
        return list(self._insertion)

    def edges(self) -> List[Tuple[str, str]]:
        """All class edges as ``(parent, child)`` pairs."""
        return [
            (parent, child)
            for parent in self._insertion
            for child in sorted(self._children[parent])
        ]

    def preference_edges(self) -> List[Tuple[str, str]]:
        """All preference edges as ``(weaker, stronger)`` pairs."""
        return [
            (weaker, stronger)
            for weaker in sorted(self._pref_children)
            for stronger in sorted(self._pref_children[weaker])
        ]

    def parents(self, name: str) -> FrozenSet[str]:
        self._require(name)
        return frozenset(self._parents[name])

    def children(self, name: str) -> FrozenSet[str]:
        self._require(name)
        return frozenset(self._children[name])

    def is_instance(self, name: str) -> bool:
        self._require(name)
        return name in self._instances

    def is_leaf(self, name: str) -> bool:
        """True iff ``name`` has no children.

        Leaves are the *atoms* of the domain: explication enumerates
        them, and an atomic item is a cartesian product of them.  A
        childless class counts (the paper allows leaves to "represent
        classes as well rather than instances").
        """
        self._require(name)
        return not self._children[name]

    def leaves(self) -> List[str]:
        """All leaf nodes, in insertion order."""
        return [name for name in self._insertion if not self._children[name]]

    def leaves_under(self, name: str) -> List[str]:
        """The atoms of class ``name``: its leaf descendants (or itself),
        in insertion order.  Walks the cone directly — O(cone) instead of
        a full-width bitset scan, and never forces the mask build."""
        self._require(name)
        ins_rank = self._order()[2]
        leaves = [
            node
            for node in self.downward_closure((name,))
            if not self._children[node]
        ]
        leaves.sort(key=ins_rank.__getitem__)
        return leaves

    def topological_order(self) -> List[str]:
        """A deterministic topological order of the class graph."""
        return list(self._order()[0])

    def topological_rank(self, name: str) -> int:
        """The position of ``name`` in :meth:`topological_order`.

        Ancestors always rank strictly below their descendants, so the
        rank is a ready-made linear-extension sort key.
        """
        self._require(name)
        return self._order()[1][name]

    def topological_ranks(self) -> Dict[str, int]:
        """The full name → :meth:`topological_rank` mapping.

        Callers sorting many items should bind this dict once instead of
        calling :meth:`topological_rank` per value: the per-call version
        check and attribute hops dominate tight sort loops.  Treat the
        returned dict as read-only — it *is* the cache."""
        return self._order()[1]

    # ------------------------------------------------------------------
    # subsumption / reachability
    # ------------------------------------------------------------------

    def subsumes(self, general: str, specific: str) -> bool:
        """True iff ``specific`` ⊆ ``general`` (reflexive)."""
        self._require(general)
        self._require(specific)
        masks = self._masks()
        return bool(masks["desc"][general] >> masks["rank"][specific] & 1)

    def strictly_subsumes(self, general: str, specific: str) -> bool:
        """True iff ``specific`` ⊂ ``general`` (irreflexive)."""
        return general != specific and self.subsumes(general, specific)

    def binding_subsumes(self, general: str, specific: str) -> bool:
        """Subsumption in the binding order (class edges plus preference
        edges).  Identical to :meth:`subsumes` when no preference edges
        exist."""
        self._require(general)
        self._require(specific)
        masks = self._masks()
        return bool(masks["bind_desc"][general] >> masks["rank"][specific] & 1)

    def descendants(self, name: str, include_self: bool = True) -> Set[str]:
        self._require(name)
        masks = self._masks()
        mask = masks["desc"][name]
        if not include_self:
            mask &= ~(1 << masks["rank"][name])
        return self._unpack(mask)

    def ancestors(self, name: str, include_self: bool = True) -> Set[str]:
        self._require(name)
        masks = self._masks()
        mask = masks["anc"][name]
        if not include_self:
            mask &= ~(1 << masks["rank"][name])
        return self._unpack(mask)

    def maximal_common_descendants(self, a: str, b: str) -> List[str]:
        """The *meet set* of ``a`` and ``b``: common descendants with no
        strictly more general common descendant.

        This is the set the conflict machinery (section 3.1) probes for
        intersection evidence, and the building block of the
        multi-attribute *maximal conflict-resolution set*.  If ``a``
        subsumes ``b`` the result is ``[b]``; if the two classes share no
        node the result is empty (the paper's "optimistic" disjointness).

        Answers are memoised per hierarchy version (the *meet table*),
        so algebra sweeps that probe the same value pair across many
        item pairs pay for each component meet exactly once.
        """
        self._require(a)
        self._require(b)
        masks = self._masks()
        if a == b:
            return [a]
        meets: Dict[Tuple[str, str], Tuple[str, ...]] = masks["meets"]  # type: ignore[assignment]
        key = (a, b) if a <= b else (b, a)
        hit = meets.get(key)
        if hit is not None:
            return list(hit)
        desc = masks["desc"]
        da, db = desc[a], desc[b]
        common = da & db
        if not common:
            out: List[str] = []
        elif common == db:  # a subsumes b
            out = [b]
        elif common == da:  # b subsumes a
            out = [a]
        else:
            out = self._maximal_of_mask(common)
        meets[key] = tuple(out)
        return out

    def _maximal_of_mask(self, mask: int) -> List[str]:
        """The nodes of a bitset with no strict ancestor in the bitset,
        in topological-rank order (only the set bits are visited)."""
        masks = self._masks()
        order: List[str] = masks["order"]  # type: ignore[assignment]
        anc = masks["anc"]
        out: List[str] = []
        rest = mask
        while rest:
            low = rest & -rest
            node = order[low.bit_length() - 1]
            if anc[node] & mask == low:
                out.append(node)
            rest ^= low
        return out

    def meet_closed_values(self, values: Iterable[str]) -> Set[str]:
        """The smallest superset of ``values`` closed under pairwise
        meets (:meth:`maximal_common_descendants`), computed as a bulk
        bitset sweep rather than a quadratic scan of node pairs.

        Each round seeds the pool values onto their nodes, sweeps the
        masks down (:meth:`downward_union`) and back up the class graph,
        so every pool value knows — in one pass — exactly which other
        pool values share a descendant with it.  Only those pairs are
        probed for meets; comparable pairs are skipped outright (their
        meet is the lower value, already pooled).  Disjoint-heavy pools
        (the common case for stored relations) therefore cost O(V + E)
        per round instead of O(pool**2) full-graph scans.
        """
        masks = self._masks()
        desc = masks["desc"]
        order: List[str] = []
        pool: Set[str] = set()
        for value in values:
            self._require(value)
            if value not in pool:
                pool.add(value)
                order.append(value)
        start = 0
        while start < len(order):
            frontier = len(order)
            overlap = self._overlap_masks(order[:frontier])
            for j in range(start, frontier):
                vj = order[j]
                dj = desc[vj]
                partners = overlap[vj] & ((1 << j) - 1)
                while partners:
                    low = partners & -partners
                    partners ^= low
                    di = desc[order[low.bit_length() - 1]]
                    common = dj & di
                    if common == dj or common == di:
                        continue  # comparable: the meet is already pooled
                    for node in self._maximal_of_mask(common):
                        if node not in pool:
                            pool.add(node)
                            order.append(node)
            start = frontier
        return pool

    def _overlap_masks(self, values: Sequence[str]) -> Dict[str, int]:
        """For each node, the bitset of ``values`` (by position) sharing
        at least one descendant with it."""
        seed: Dict[str, int] = {}
        for i, value in enumerate(values):
            seed[value] = seed.get(value, 0) | (1 << i)
        return self.overlap_union(seed)

    def overlap_union(self, seed: Dict[str, int]) -> Dict[str, int]:
        """The *overlap* analogue of :meth:`downward_union`: the result
        at each node is the union of the seed masks of every node whose
        descendant cone intersects its own.  One downward sweep pushes
        each seed to the nodes it subsumes, one upward sweep unions the
        result back over each node's descendant cone — O(V + E) for what
        would otherwise be a cone-intersection test per (seed, node)
        pair.  This is how the product meet-closure decides which item
        pairs can possibly meet without probing them."""
        down = self.downward_union(seed)
        up: Dict[str, int] = {}
        for node in reversed(self._masks()["order"]):  # type: ignore[arg-type]
            mask = down[node]
            for child in self._children[node]:
                mask |= up[child]
            up[node] = mask
        return up

    def descendant_mask(self, name: str) -> int:
        """The descendant bitset of ``name`` as a Python int; bit ``i``
        is set iff the node of :meth:`topological_rank` ``i`` is a
        (reflexive) descendant.  This is the raw form of
        :meth:`descendants`, exposed for batch algorithms that combine
        many reachability facts without materialising node sets."""
        self._require(name)
        return self._masks()["desc"][name]  # type: ignore[index]

    def ancestor_mask(self, name: str) -> int:
        """The ancestor bitset of ``name`` (see :meth:`descendant_mask`)."""
        self._require(name)
        return self._masks()["anc"][name]  # type: ignore[index]

    def downward_union(self, seed: Dict[str, int]) -> Dict[str, int]:
        """Sweep integer bitmasks down the class graph in one pass.

        The result at each node is the union of its own ``seed`` mask
        with the seed masks of *all* its ancestors — i.e. the seeds that
        subsume the node.  One O(V + E) traversal answers what would
        otherwise be a reachability query per (seed, node) pair; the
        bulk truth evaluator uses it to push every stored tuple's bit
        down to each hierarchy node its value subsumes.  Nodes absent
        from ``seed`` contribute the empty mask.  Redundant class edges
        are harmless (union is idempotent); preference edges are
        ignored, matching the applicability order.
        """
        out: Dict[str, int] = {}
        for node in self._masks()["order"]:  # type: ignore[union-attr]
            mask = seed.get(node, 0)
            for parent in self._parents[node]:
                mask |= out[parent]
            out[node] = mask
        return out

    def redundant_edges(self) -> Set[Tuple[str, str]]:
        """Class edges parallel to a longer path (see the appendix).

        An edge ``p -> v`` is redundant iff some longer ``p`` to ``v``
        path exists; in a DAG that path's last hop enters ``v`` from
        another parent ``q``, so the exact characterisation is: ``p`` is
        a strict ancestor of a sibling parent ``q`` of ``v``.  Only
        multi-parent nodes can carry one, so the scan is free on tree
        hierarchies and never touches the full-width bitsets."""
        if self._redundant_version == self._version:
            return self._redundant_cache
        redundant: Set[Tuple[str, str]] = set()
        for node, parents in self._parents.items():
            if len(parents) < 2:
                continue
            parent_set = set(parents)
            for q in parents:
                seen: Set[str] = set()
                stack = list(self._parents[q])
                while stack:
                    above = stack.pop()
                    if above in seen:
                        continue
                    seen.add(above)
                    if above in parent_set:
                        redundant.add((above, node))
                    stack.extend(self._parents[above])
        self._redundant_cache = redundant
        self._redundant_version = self._version
        return redundant

    def is_transitively_reduced(self) -> bool:
        """True iff the class graph carries no redundant edges — the
        normal form off-path preemption assumes."""
        return not self.redundant_edges()

    def class_graph(self) -> Dict[str, Set[str]]:
        """A copy of the class adjacency (parent -> children)."""
        return {node: set(children) for node, children in self._children.items()}

    def binding_graph(self) -> Dict[str, Set[str]]:
        """A copy of the class adjacency with preference edges merged in."""
        graph = self.class_graph()
        for weaker, stronger in self.preference_edges():
            graph[weaker].add(stronger)
        return graph

    def has_preference_edges(self) -> bool:
        return any(self._pref_children.values())

    @property
    def version(self) -> int:
        """Mutation counter; anything caching against a hierarchy should
        key on ``(id(h), h.version)``."""
        return self._version

    # ------------------------------------------------------------------
    # picklable sub-hierarchy extraction (the parallel execution layer)
    # ------------------------------------------------------------------

    def downward_closure(self, values: Iterable[str]) -> Set[str]:
        """Every (reflexive) descendant of any of ``values`` — the node
        set of the induced sub-hierarchy a parallel shard needs.  Being
        downward closed, the induced subgraph preserves reachability,
        every parent-to-child path, and leaf status for all its nodes.

        A plain graph walk, O(closure): the coordinator calls this per
        shard, and pulling full-width descendant bitsets here would cost
        more than the workers' entire sweeps."""
        closure: Set[str] = set()
        stack: List[str] = []
        for value in values:
            self._require(value)
            if value not in closure:
                closure.add(value)
                stack.append(value)
        while stack:
            node = stack.pop()
            for child in self._children[node]:
                if child not in closure:
                    closure.add(child)
                    stack.append(child)
        return closure

    def subgraph_payload(self, values: Iterable[str]) -> Dict[str, object]:
        """A picklable description of the sub-hierarchy induced by the
        downward closure of ``values``, plus the slice of the memoised
        meet table that lives inside it.

        The payload is plain dicts/lists/strings, so it crosses a
        process boundary cheaply; :meth:`from_subgraph_payload` rebuilds
        an equivalent :class:`Hierarchy`.  Nodes are listed in
        topological order with their *in-set* parents only; nodes whose
        parents all fall outside the closure hang directly under the
        root.  The rebuilt graph therefore answers subsumption, meets,
        leaves and topological ranks identically to this hierarchy for
        every item over the closed node set.
        """
        node_set = self.downward_closure(values)
        rank = self._order()[1]
        order: List[str] = sorted(node_set, key=rank.__getitem__)
        nodes: List[Tuple[str, List[str], bool]] = []
        for node in order:
            if node == self.root:
                continue
            parents = [p for p in self._parents[node] if p in node_set]
            nodes.append((node, parents, node in self._instances))
        prefs = [
            (weaker, stronger)
            for weaker, stronger in self.preference_edges()
            if weaker in node_set and stronger in node_set
        ]
        # Meet-table slice: entries whose endpoints lie in the closure.
        # Their members are common descendants, hence in the closure
        # too, and maximality is preserved (the closure is downward
        # closed), so each entry is valid verbatim in the subgraph.
        # The slice is a warm-start hint, not a correctness requirement
        # (the rebuilt graph recomputes meets lazily), so it is capped,
        # and a *cold* mask cache is never forced just to look for one:
        # a cache left hot by a prior full-hierarchy sweep can hold
        # millions of entries, and scanning or shipping them would cost
        # more than the workers' own meet computation saves.
        meets: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        if self._cache_version == self._version:
            meets_table = self._cache["meets"]
            cap = 4 * len(node_set)
            if len(meets_table) <= 16 * max(1, len(node_set)):  # type: ignore[arg-type]
                for key, value in meets_table.items():  # type: ignore[union-attr]
                    if key[0] in node_set and key[1] in node_set:
                        meets[key] = value
                        if len(meets) >= cap:
                            break
        return {
            "name": self.name,
            "root": self.root,
            "has_root": self.root in node_set,
            "nodes": nodes,
            "prefs": prefs,
            "meets": list(meets.items()),
        }

    @classmethod
    def from_node_table(
        cls,
        name: str,
        root: str,
        nodes: Iterable[Tuple[str, Sequence[str], bool]],
        prefs: Iterable[Tuple[str, str]] = (),
    ) -> "Hierarchy":
        """Bulk-load an already-validated node table.

        ``nodes`` is ``(name, parents, is_instance)`` triples in an
        order where parents precede children (insertion or topological
        order both qualify); a node with no listed parents hangs under
        the root.  The per-node API checks in :meth:`_add_node` are
        skipped — callers (subgraph shipping, binary snapshot recovery)
        serialised a graph that already holds the invariants — and no
        cache is touched, so loading stays linear in the table size.
        """
        hierarchy = cls(name, root=root)
        children = hierarchy._children
        parents_of = hierarchy._parents
        insertion = hierarchy._insertion
        instances = hierarchy._instances
        for node, parents, is_instance in nodes:
            parent_list = tuple(parents) or (root,)
            children[node] = set()
            parents_of[node] = set(parent_list)
            insertion.append(node)
            for parent in parent_list:
                children[parent].add(node)
            if is_instance:
                instances.add(node)
        hierarchy._version += 1
        for weaker, stronger in prefs:
            hierarchy.add_preference_edge(weaker, stronger)
        return hierarchy

    @classmethod
    def from_subgraph_payload(cls, payload: Dict[str, object]) -> "Hierarchy":
        """Rebuild the sub-hierarchy described by
        :meth:`subgraph_payload`.  When the original root was outside
        the closure, a node with the root's *name* still caps the
        graph (it subsumes exactly what the original root subsumes,
        restricted to the closure), so items and selection cones that
        mention the root keep validating."""
        hierarchy = cls.from_node_table(
            str(payload["name"]),
            str(payload["root"]),
            payload["nodes"],  # type: ignore[arg-type]
            prefs=payload["prefs"],  # type: ignore[arg-type]
        )
        hierarchy.preload_meets(payload.get("meets", ()))  # type: ignore[arg-type]
        return hierarchy

    def preload_meets(
        self, entries: Iterable[Tuple[Tuple[str, str], Tuple[str, ...]]]
    ) -> None:
        """Seed the lazy meet table with precomputed entries (a shipped
        meet-table slice).  Entries must be valid for the *current*
        graph; they are discarded with the rest of the cache on the next
        mutation, like any other memoised meet."""
        table: Dict[Tuple[str, str], Tuple[str, ...]] = self._masks()["meets"]  # type: ignore[assignment]
        for key, value in entries:
            table[tuple(key)] = tuple(value)

    def __repr__(self) -> str:
        return "Hierarchy({!r}, {} nodes, {} edges)".format(
            self.name, len(self), sum(len(c) for c in self._children.values())
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _require(self, name: str) -> None:
        if name not in self._children:
            raise UnknownNodeError(
                "unknown node {!r} in hierarchy {!r}".format(name, self.name)
            )

    def _unpack(self, mask: int) -> Set[str]:
        rank = self._masks()["rank"]
        return {node for node in self._insertion if mask >> rank[node] & 1}

    def _order(self) -> Tuple[List[str], Dict[str, int], Dict[str, int]]:
        """``(order, rank, insertion_rank)`` — the linear slice of the
        cache.  Separate from :meth:`_masks` so order-only consumers
        (sort keys, the parallel planner, payload extraction) never pay
        for the quadratic bitset build."""
        if self._order_version == self._version:
            return self._order_cache
        order = algorithms.topological_order(self._children, tie_break=self._insertion)
        rank = {node: i for i, node in enumerate(order)}
        ins_rank = {node: i for i, node in enumerate(self._insertion)}
        self._order_cache = (order, rank, ins_rank)
        self._order_version = self._version
        return self._order_cache

    def _masks(self) -> Dict[str, object]:
        if self._cache_version == self._version:
            return self._cache
        order, rank, _ = self._order()
        desc = self._descendant_masks(self._children, order, rank)
        bind_children = self._children
        if self.has_preference_edges():
            bind_children = self.binding_graph()
            bind_order = algorithms.topological_order(bind_children, tie_break=self._insertion)
            bind_desc = self._descendant_masks(bind_children, bind_order, rank)
        else:
            bind_desc = desc
        anc: Dict[str, int] = {}
        for node in order:
            mask = 1 << rank[node]
            for parent in self._parents[node]:
                mask |= anc[parent]
            anc[node] = mask
        self._cache = {
            "order": order,
            "rank": rank,
            "desc": desc,
            "bind_desc": bind_desc,
            "anc": anc,
            # Meet table: (a, b) value pair -> meet set, filled lazily by
            # maximal_common_descendants and discarded with the rest of
            # the cache whenever the hierarchy version moves.
            "meets": {},
        }
        self._cache_version = self._version
        return self._cache

    @staticmethod
    def _descendant_masks(
        children: Dict[str, Set[str]],
        order: Sequence[str],
        rank: Dict[str, int],
    ) -> Dict[str, int]:
        masks: Dict[str, int] = {}
        for node in reversed(order):
            mask = 1 << rank[node]
            for child in children.get(node, ()):
                mask |= masks[child]
            masks[node] = mask
        return masks
