"""The hierarchy graph of section 2.1.

A :class:`Hierarchy` is a rooted directed acyclic graph over string-named
nodes.  The root is the attribute *domain* itself; an edge runs from each
more general class to each more specific class derived from it; declared
*instances* sit at the leaves.  Following the paper (footnote 3) an
instance is just a singleton class: membership (``∈``) and subset (``⊆``)
are deliberately conflated, and both are answered by graph reachability.

Two structural rules from section 3.1 are enforced:

* **type irredundancy** — the graph must stay acyclic; any mutation that
  would close a cycle raises :class:`~repro.errors.CycleError`;
* every node other than the root has at least one parent (nodes are
  created under the root by default), so the graph stays rooted.

The appendix's *preference edges* — special edges that induce binding
strength without asserting set inclusion — are stored separately: they
participate in the *binding* order (used by preemption) but never in
membership, descendants, or explication.

Performance notes.  Reachability queries dominate every downstream
algorithm, so the hierarchy keeps lazily-built caches: a topological
order, per-node ancestor/descendant bitsets (Python ints indexed by node
rank), one family for the membership graph and one for the binding graph
(membership plus preference edges).  Caches are invalidated by a version
counter bumped on every mutation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.errors import (
    CycleError,
    DuplicateNodeError,
    HierarchyError,
    UnknownNodeError,
)
from repro.hierarchy import algorithms


class Hierarchy:
    """A rooted DAG of classes with instances at the leaves.

    Parameters
    ----------
    name:
        A label for the domain, e.g. ``"animal"``.  Used in rendering and
        schema error messages.
    root:
        The name of the root node (the whole domain).  Defaults to the
        hierarchy name.

    Examples
    --------
    >>> h = Hierarchy("animal")
    >>> h.add_class("bird")
    >>> h.add_class("penguin", parents=["bird"])
    >>> h.add_instance("tweety", parents=["bird"])
    >>> h.subsumes("bird", "tweety")
    True
    """

    def __init__(self, name: str, root: str | None = None) -> None:
        if not name:
            raise HierarchyError("hierarchy name must be non-empty")
        self.name = name
        self.root = root if root is not None else name
        self._children: Dict[str, Set[str]] = {self.root: set()}
        self._parents: Dict[str, Set[str]] = {self.root: set()}
        self._instances: Set[str] = set()
        self._pref_children: Dict[str, Set[str]] = {}
        self._pref_parents: Dict[str, Set[str]] = {}
        self._insertion: List[str] = [self.root]
        self._version = 0
        self._cache_version = -1
        self._cache: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_class(self, name: str, parents: Sequence[str] | None = None) -> None:
        """Add a class under ``parents`` (default: directly under the root)."""
        self._add_node(name, parents)

    def add_instance(self, name: str, parents: Sequence[str] | None = None) -> None:
        """Add an instance (a leaf).  Instances may not later gain children."""
        self._add_node(name, parents)
        self._instances.add(name)

    def _add_node(self, name: str, parents: Sequence[str] | None) -> None:
        if not name:
            raise HierarchyError("node name must be non-empty")
        if name in self._children:
            raise DuplicateNodeError(
                "node {!r} already exists in hierarchy {!r}".format(name, self.name)
            )
        parent_list = list(parents) if parents is not None else [self.root]
        if not parent_list:
            raise HierarchyError(
                "node {!r} needs at least one parent (the hierarchy is rooted)".format(name)
            )
        for parent in parent_list:
            self._require(parent)
            if parent in self._instances:
                raise HierarchyError(
                    "cannot derive {!r} from instance {!r}: instances are leaves".format(
                        name, parent
                    )
                )
        self._children[name] = set()
        self._parents[name] = set()
        self._insertion.append(name)
        for parent in parent_list:
            self._children[parent].add(name)
            self._parents[name].add(parent)
        self._version += 1

    def add_edge(self, parent: str, child: str) -> None:
        """Declare ``child`` ⊆ ``parent`` between two existing nodes.

        Raises :class:`CycleError` if the edge would violate type
        irredundancy.  Adding an edge parallel to an existing path is
        legal (the appendix uses one deliberately) but flips the
        hierarchy out of transitively-reduced normal form, which switches
        binding computations onto the slower node-elimination path.
        """
        self._require(parent)
        self._require(child)
        if parent in self._instances:
            raise HierarchyError(
                "cannot derive {!r} from instance {!r}: instances are leaves".format(
                    child, parent
                )
            )
        if child == parent or self.subsumes(child, parent):
            raise CycleError(
                "edge {!r} -> {!r} would create a cycle (type irredundancy)".format(
                    parent, child
                )
            )
        self._children[parent].add(child)
        self._parents[child].add(parent)
        self._version += 1

    def add_preference_edge(self, weaker: str, stronger: str) -> None:
        """Add an appendix-style preference edge: tuples at ``stronger``
        preempt tuples at ``weaker`` wherever both apply.

        The edge shapes the tuple-binding graph exactly like a class edge
        from ``weaker`` to ``stronger`` would, but asserts no set
        inclusion: membership, descendants, and explication ignore it.
        """
        self._require(weaker)
        self._require(stronger)
        if weaker == stronger or self.binding_subsumes(stronger, weaker):
            raise CycleError(
                "preference edge {!r} -> {!r} would create a binding cycle".format(
                    weaker, stronger
                )
            )
        self._pref_children.setdefault(weaker, set()).add(stronger)
        self._pref_parents.setdefault(stronger, set()).add(weaker)
        self._version += 1

    def remove_node(self, name: str, keep_redundant: bool = False) -> None:
        """Remove ``name`` via the paper's node-elimination procedure,
        reconnecting its predecessors to its successors so that all other
        reachability is preserved."""
        self._require(name)
        if name == self.root:
            raise HierarchyError("cannot remove the root of a hierarchy")
        graph = {node: set(children) for node, children in self._children.items()}
        algorithms.eliminate_node(graph, name, keep_redundant=keep_redundant)
        self._children = graph
        self._parents = algorithms.invert(graph)
        self._instances.discard(name)
        self._insertion.remove(name)
        for table in (self._pref_children, self._pref_parents):
            table.pop(name, None)
            for targets in table.values():
                targets.discard(name)
        self._version += 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._children

    def __len__(self) -> int:
        return len(self._children)

    def __iter__(self) -> Iterator[str]:
        return iter(self._insertion)

    def nodes(self) -> List[str]:
        """All node names in insertion order (root first)."""
        return list(self._insertion)

    def edges(self) -> List[Tuple[str, str]]:
        """All class edges as ``(parent, child)`` pairs."""
        return [
            (parent, child)
            for parent in self._insertion
            for child in sorted(self._children[parent])
        ]

    def preference_edges(self) -> List[Tuple[str, str]]:
        """All preference edges as ``(weaker, stronger)`` pairs."""
        return [
            (weaker, stronger)
            for weaker in sorted(self._pref_children)
            for stronger in sorted(self._pref_children[weaker])
        ]

    def parents(self, name: str) -> FrozenSet[str]:
        self._require(name)
        return frozenset(self._parents[name])

    def children(self, name: str) -> FrozenSet[str]:
        self._require(name)
        return frozenset(self._children[name])

    def is_instance(self, name: str) -> bool:
        self._require(name)
        return name in self._instances

    def is_leaf(self, name: str) -> bool:
        """True iff ``name`` has no children.

        Leaves are the *atoms* of the domain: explication enumerates
        them, and an atomic item is a cartesian product of them.  A
        childless class counts (the paper allows leaves to "represent
        classes as well rather than instances").
        """
        self._require(name)
        return not self._children[name]

    def leaves(self) -> List[str]:
        """All leaf nodes, in insertion order."""
        return [name for name in self._insertion if not self._children[name]]

    def leaves_under(self, name: str) -> List[str]:
        """The atoms of class ``name``: its leaf descendants (or itself)."""
        self._require(name)
        mask = self._masks()["desc"][name]
        index = self._masks()["rank"]
        return [node for node in self._insertion if mask >> index[node] & 1 and not self._children[node]]

    def topological_order(self) -> List[str]:
        """A deterministic topological order of the class graph."""
        return list(self._masks()["order"])

    def topological_rank(self, name: str) -> int:
        """The position of ``name`` in :meth:`topological_order`.

        Ancestors always rank strictly below their descendants, so the
        rank is a ready-made linear-extension sort key.
        """
        self._require(name)
        return self._masks()["rank"][name]  # type: ignore[index]

    # ------------------------------------------------------------------
    # subsumption / reachability
    # ------------------------------------------------------------------

    def subsumes(self, general: str, specific: str) -> bool:
        """True iff ``specific`` ⊆ ``general`` (reflexive)."""
        self._require(general)
        self._require(specific)
        masks = self._masks()
        return bool(masks["desc"][general] >> masks["rank"][specific] & 1)

    def strictly_subsumes(self, general: str, specific: str) -> bool:
        """True iff ``specific`` ⊂ ``general`` (irreflexive)."""
        return general != specific and self.subsumes(general, specific)

    def binding_subsumes(self, general: str, specific: str) -> bool:
        """Subsumption in the binding order (class edges plus preference
        edges).  Identical to :meth:`subsumes` when no preference edges
        exist."""
        self._require(general)
        self._require(specific)
        masks = self._masks()
        return bool(masks["bind_desc"][general] >> masks["rank"][specific] & 1)

    def descendants(self, name: str, include_self: bool = True) -> Set[str]:
        self._require(name)
        masks = self._masks()
        mask = masks["desc"][name]
        if not include_self:
            mask &= ~(1 << masks["rank"][name])
        return self._unpack(mask)

    def ancestors(self, name: str, include_self: bool = True) -> Set[str]:
        self._require(name)
        masks = self._masks()
        mask = masks["anc"][name]
        if not include_self:
            mask &= ~(1 << masks["rank"][name])
        return self._unpack(mask)

    def maximal_common_descendants(self, a: str, b: str) -> List[str]:
        """The *meet set* of ``a`` and ``b``: common descendants with no
        strictly more general common descendant.

        This is the set the conflict machinery (section 3.1) probes for
        intersection evidence, and the building block of the
        multi-attribute *maximal conflict-resolution set*.  If ``a``
        subsumes ``b`` the result is ``[b]``; if the two classes share no
        node the result is empty (the paper's "optimistic" disjointness).

        Answers are memoised per hierarchy version (the *meet table*),
        so algebra sweeps that probe the same value pair across many
        item pairs pay for each component meet exactly once.
        """
        self._require(a)
        self._require(b)
        masks = self._masks()
        if a == b:
            return [a]
        meets: Dict[Tuple[str, str], Tuple[str, ...]] = masks["meets"]  # type: ignore[assignment]
        key = (a, b) if a <= b else (b, a)
        hit = meets.get(key)
        if hit is not None:
            return list(hit)
        desc = masks["desc"]
        da, db = desc[a], desc[b]
        common = da & db
        if not common:
            out: List[str] = []
        elif common == db:  # a subsumes b
            out = [b]
        elif common == da:  # b subsumes a
            out = [a]
        else:
            out = self._maximal_of_mask(common)
        meets[key] = tuple(out)
        return out

    def _maximal_of_mask(self, mask: int) -> List[str]:
        """The nodes of a bitset with no strict ancestor in the bitset,
        in topological-rank order (only the set bits are visited)."""
        masks = self._masks()
        order: List[str] = masks["order"]  # type: ignore[assignment]
        anc = masks["anc"]
        out: List[str] = []
        rest = mask
        while rest:
            low = rest & -rest
            node = order[low.bit_length() - 1]
            if anc[node] & mask == low:
                out.append(node)
            rest ^= low
        return out

    def meet_closed_values(self, values: Iterable[str]) -> Set[str]:
        """The smallest superset of ``values`` closed under pairwise
        meets (:meth:`maximal_common_descendants`), computed as a bulk
        bitset sweep rather than a quadratic scan of node pairs.

        Each round seeds the pool values onto their nodes, sweeps the
        masks down (:meth:`downward_union`) and back up the class graph,
        so every pool value knows — in one pass — exactly which other
        pool values share a descendant with it.  Only those pairs are
        probed for meets; comparable pairs are skipped outright (their
        meet is the lower value, already pooled).  Disjoint-heavy pools
        (the common case for stored relations) therefore cost O(V + E)
        per round instead of O(pool**2) full-graph scans.
        """
        masks = self._masks()
        desc = masks["desc"]
        order: List[str] = []
        pool: Set[str] = set()
        for value in values:
            self._require(value)
            if value not in pool:
                pool.add(value)
                order.append(value)
        start = 0
        while start < len(order):
            frontier = len(order)
            overlap = self._overlap_masks(order[:frontier])
            for j in range(start, frontier):
                vj = order[j]
                dj = desc[vj]
                partners = overlap[vj] & ((1 << j) - 1)
                while partners:
                    low = partners & -partners
                    partners ^= low
                    di = desc[order[low.bit_length() - 1]]
                    common = dj & di
                    if common == dj or common == di:
                        continue  # comparable: the meet is already pooled
                    for node in self._maximal_of_mask(common):
                        if node not in pool:
                            pool.add(node)
                            order.append(node)
            start = frontier
        return pool

    def _overlap_masks(self, values: Sequence[str]) -> Dict[str, int]:
        """For each node, the bitset of ``values`` (by position) sharing
        at least one descendant with it."""
        seed: Dict[str, int] = {}
        for i, value in enumerate(values):
            seed[value] = seed.get(value, 0) | (1 << i)
        return self.overlap_union(seed)

    def overlap_union(self, seed: Dict[str, int]) -> Dict[str, int]:
        """The *overlap* analogue of :meth:`downward_union`: the result
        at each node is the union of the seed masks of every node whose
        descendant cone intersects its own.  One downward sweep pushes
        each seed to the nodes it subsumes, one upward sweep unions the
        result back over each node's descendant cone — O(V + E) for what
        would otherwise be a cone-intersection test per (seed, node)
        pair.  This is how the product meet-closure decides which item
        pairs can possibly meet without probing them."""
        down = self.downward_union(seed)
        up: Dict[str, int] = {}
        for node in reversed(self._masks()["order"]):  # type: ignore[arg-type]
            mask = down[node]
            for child in self._children[node]:
                mask |= up[child]
            up[node] = mask
        return up

    def descendant_mask(self, name: str) -> int:
        """The descendant bitset of ``name`` as a Python int; bit ``i``
        is set iff the node of :meth:`topological_rank` ``i`` is a
        (reflexive) descendant.  This is the raw form of
        :meth:`descendants`, exposed for batch algorithms that combine
        many reachability facts without materialising node sets."""
        self._require(name)
        return self._masks()["desc"][name]  # type: ignore[index]

    def ancestor_mask(self, name: str) -> int:
        """The ancestor bitset of ``name`` (see :meth:`descendant_mask`)."""
        self._require(name)
        return self._masks()["anc"][name]  # type: ignore[index]

    def downward_union(self, seed: Dict[str, int]) -> Dict[str, int]:
        """Sweep integer bitmasks down the class graph in one pass.

        The result at each node is the union of its own ``seed`` mask
        with the seed masks of *all* its ancestors — i.e. the seeds that
        subsume the node.  One O(V + E) traversal answers what would
        otherwise be a reachability query per (seed, node) pair; the
        bulk truth evaluator uses it to push every stored tuple's bit
        down to each hierarchy node its value subsumes.  Nodes absent
        from ``seed`` contribute the empty mask.  Redundant class edges
        are harmless (union is idempotent); preference edges are
        ignored, matching the applicability order.
        """
        out: Dict[str, int] = {}
        for node in self._masks()["order"]:  # type: ignore[union-attr]
            mask = seed.get(node, 0)
            for parent in self._parents[node]:
                mask |= out[parent]
            out[node] = mask
        return out

    def redundant_edges(self) -> Set[Tuple[str, str]]:
        """Class edges parallel to a longer path (see the appendix)."""
        return self._masks()["redundant"]  # type: ignore[return-value]

    def is_transitively_reduced(self) -> bool:
        """True iff the class graph carries no redundant edges — the
        normal form off-path preemption assumes."""
        return not self.redundant_edges()

    def class_graph(self) -> Dict[str, Set[str]]:
        """A copy of the class adjacency (parent -> children)."""
        return {node: set(children) for node, children in self._children.items()}

    def binding_graph(self) -> Dict[str, Set[str]]:
        """A copy of the class adjacency with preference edges merged in."""
        graph = self.class_graph()
        for weaker, stronger in self.preference_edges():
            graph[weaker].add(stronger)
        return graph

    def has_preference_edges(self) -> bool:
        return any(self._pref_children.values())

    @property
    def version(self) -> int:
        """Mutation counter; anything caching against a hierarchy should
        key on ``(id(h), h.version)``."""
        return self._version

    def __repr__(self) -> str:
        return "Hierarchy({!r}, {} nodes, {} edges)".format(
            self.name, len(self), sum(len(c) for c in self._children.values())
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _require(self, name: str) -> None:
        if name not in self._children:
            raise UnknownNodeError(
                "unknown node {!r} in hierarchy {!r}".format(name, self.name)
            )

    def _unpack(self, mask: int) -> Set[str]:
        rank = self._masks()["rank"]
        return {node for node in self._insertion if mask >> rank[node] & 1}

    def _masks(self) -> Dict[str, object]:
        if self._cache_version == self._version:
            return self._cache
        order = algorithms.topological_order(self._children, tie_break=self._insertion)
        rank = {node: i for i, node in enumerate(order)}
        desc = self._descendant_masks(self._children, order, rank)
        bind_children = self._children
        if self.has_preference_edges():
            bind_children = self.binding_graph()
            bind_order = algorithms.topological_order(bind_children, tie_break=self._insertion)
            bind_desc = self._descendant_masks(bind_children, bind_order, rank)
        else:
            bind_desc = desc
        anc: Dict[str, int] = {}
        for node in order:
            mask = 1 << rank[node]
            for parent in self._parents[node]:
                mask |= anc[parent]
            anc[node] = mask
        redundant: Set[Tuple[str, str]] = set()
        for node, succs in self._children.items():
            for succ in succs:
                bit = 1 << rank[succ]
                if any(other != succ and desc[other] & bit for other in succs):
                    redundant.add((node, succ))
        self._cache = {
            "order": order,
            "rank": rank,
            "desc": desc,
            "bind_desc": bind_desc,
            "anc": anc,
            "redundant": redundant,
            # Meet table: (a, b) value pair -> meet set, filled lazily by
            # maximal_common_descendants and discarded with the rest of
            # the cache whenever the hierarchy version moves.
            "meets": {},
        }
        self._cache_version = self._version
        return self._cache

    @staticmethod
    def _descendant_masks(
        children: Dict[str, Set[str]],
        order: Sequence[str],
        rank: Dict[str, int],
    ) -> Dict[str, int]:
        masks: Dict[str, int] = {}
        for node in reversed(order):
            mask = 1 << rank[node]
            for child in children.get(node, ()):
                mask |= masks[child]
            masks[node] = mask
        return masks
