"""Mechanical hierarchy discovery (section 4's second research topic).

Given ordinary flat unary relations over one universe of atoms, invent
classes "in such a way that storage is minimized" and re-express every
relation hierarchically.

Two strategies:

* :func:`discover_hierarchy` — exact: group atoms by *signature* (the
  set of relations each atom belongs to); one class per signature, one
  class-level tuple per (class, relation) membership.  Lossless and
  conflict-free by construction; optimal among partitions into
  signature-pure classes.
* :func:`discover_with_exceptions` — exploit negated tuples: start from
  the signature classes and greedily merge sibling classes whenever
  expressing the difference as exceptions costs fewer tuples than
  keeping the classes apart.  (The paper notes the exact minimisation is
  NP-hard — minimum cover is a special case — hence greedy.)

Both return a :class:`DiscoveryResult` carrying the invented hierarchy,
the hierarchical relations, and the storage accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Sequence, Set, Tuple

from repro.core.relation import HRelation
from repro.hierarchy.graph import Hierarchy


@dataclass
class DiscoveryResult:
    """The output of hierarchy discovery.

    Attributes
    ----------
    hierarchy:
        The invented class hierarchy (classes over the atom universe).
    relations:
        One hierarchical relation per input relation, same extensions.
    flat_tuple_count:
        Total rows in the flat inputs.
    hierarchical_tuple_count:
        Total stored tuples in the hierarchical outputs.
    class_members:
        Mapping class name -> member atoms, for inspection.
    """

    hierarchy: Hierarchy
    relations: Dict[str, HRelation]
    flat_tuple_count: int
    hierarchical_tuple_count: int
    class_members: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    @property
    def compression_ratio(self) -> float:
        if self.hierarchical_tuple_count == 0:
            return float("inf")
        return self.flat_tuple_count / self.hierarchical_tuple_count


def _signatures(
    relations: Mapping[str, Set[str]], universe: Sequence[str]
) -> Dict[FrozenSet[str], List[str]]:
    groups: Dict[FrozenSet[str], List[str]] = {}
    for atom in universe:
        signature = frozenset(
            name for name, members in relations.items() if atom in members
        )
        groups.setdefault(signature, []).append(atom)
    return groups


def discover_hierarchy(
    relations: Mapping[str, Set[str]],
    universe: Sequence[str] | None = None,
    hierarchy_name: str = "discovered",
) -> DiscoveryResult:
    """Exact signature-based discovery (see module docstring).

    ``relations`` maps relation names to atom sets; ``universe``
    defaults to the union of all atom sets.
    """
    if universe is None:
        seen: Set[str] = set()
        ordered: List[str] = []
        for members in relations.values():
            for atom in sorted(members):
                if atom not in seen:
                    seen.add(atom)
                    ordered.append(atom)
        universe = ordered
    groups = _signatures(relations, universe)

    hierarchy = Hierarchy(hierarchy_name)
    class_members: Dict[str, FrozenSet[str]] = {}
    class_of_signature: Dict[FrozenSet[str], str] = {}
    for i, (signature, atoms) in enumerate(
        sorted(groups.items(), key=lambda kv: (sorted(kv[0]), kv[1]))
    ):
        if not signature:
            # Atoms in no relation need no class: the closed world
            # already excludes them everywhere.
            for atom in atoms:
                hierarchy.add_instance(atom)
            continue
        if len(atoms) == 1:
            # A singleton class saves nothing; assert the atom directly.
            hierarchy.add_instance(atoms[0])
            class_of_signature[signature] = atoms[0]
            continue
        name = "class_{}".format(i)
        hierarchy.add_class(name)
        class_members[name] = frozenset(atoms)
        class_of_signature[signature] = name
        for atom in atoms:
            hierarchy.add_instance(atom, parents=[name])

    out: Dict[str, HRelation] = {}
    hierarchical_count = 0
    flat_count = 0
    for name, members in sorted(relations.items()):
        flat_count += len(members)
        relation = HRelation([("x", hierarchy)], name=name)
        for signature, klass in sorted(class_of_signature.items(), key=lambda kv: kv[1]):
            if name in signature:
                relation.assert_item((klass,), truth=True)
        hierarchical_count += len(relation)
        out[name] = relation
    return DiscoveryResult(
        hierarchy=hierarchy,
        relations=out,
        flat_tuple_count=flat_count,
        hierarchical_tuple_count=hierarchical_count,
        class_members=class_members,
    )


def discover_with_exceptions(
    relations: Mapping[str, Set[str]],
    universe: Sequence[str] | None = None,
    hierarchy_name: str = "discovered",
) -> DiscoveryResult:
    """Greedy merge of signature groups using negated tuples.

    Repeatedly merge the pair of groups whose merge saves the most
    stored tuples, counting: one positive tuple per relation covering
    the merged class, plus one negated *sub-class* tuple per relation
    where only one side belongs.  Stops when no merge saves anything.
    """
    if universe is None:
        seen: Set[str] = set()
        ordered: List[str] = []
        for members in relations.values():
            for atom in sorted(members):
                if atom not in seen:
                    seen.add(atom)
                    ordered.append(atom)
        universe = ordered
    groups = [
        (signature, tuple(atoms))
        for signature, atoms in sorted(
            _signatures(relations, universe).items(),
            key=lambda kv: (sorted(kv[0]), kv[1]),
        )
        if signature
    ]

    def cost_separate(sig_a: FrozenSet[str], sig_b: FrozenSet[str]) -> int:
        return len(sig_a) + len(sig_b)

    def cost_merged(sig_a: FrozenSet[str], sig_b: FrozenSet[str]) -> int:
        # Union signature asserted on the merged class; each one-sided
        # relation needs one exception tuple on the other side's sub-class.
        return len(sig_a | sig_b) + len(sig_a ^ sig_b)

    # Merges are single-level: a group that already absorbed another is
    # not merged again, so every exception stays expressible with one
    # negated sub-class tuple (re-merging would need exception chains
    # the cost model above does not count).
    merged = True
    while merged and len(groups) > 1:
        merged = False
        best: Tuple[int, int, int] | None = None
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                if len(groups[i]) > 2 or len(groups[j]) > 2:
                    continue
                saving = cost_separate(groups[i][0], groups[j][0]) - cost_merged(
                    groups[i][0], groups[j][0]
                )
                if saving > 0 and (best is None or saving > best[0]):
                    best = (saving, i, j)
        if best is not None:
            _, i, j = best
            sig_a, atoms_a = groups[i]
            sig_b, atoms_b = groups[j]
            replacement = (sig_a | sig_b, atoms_a + atoms_b)
            groups = [g for k, g in enumerate(groups) if k not in (i, j)]
            groups.append((replacement[0], replacement[1], (sig_a, atoms_a, sig_b, atoms_b)))  # type: ignore[arg-type]
            merged = True

    # Build the hierarchy: merged groups become a parent class with two
    # sub-classes when they carry merge history, else a flat class.
    hierarchy = Hierarchy(hierarchy_name)
    class_members: Dict[str, FrozenSet[str]] = {}
    plan: List[Tuple[str, FrozenSet[str], List[Tuple[str, FrozenSet[str]]]]] = []
    for i, group in enumerate(groups):
        signature, atoms = group[0], group[1]
        history = group[2] if len(group) > 2 else None  # type: ignore[misc]
        name = "class_{}".format(i)
        hierarchy.add_class(name)
        class_members[name] = frozenset(atoms)
        subclasses: List[Tuple[str, FrozenSet[str]]] = []
        if history is not None:
            sig_a, atoms_a, sig_b, atoms_b = history
            for suffix, sig, part in (("a", sig_a, atoms_a), ("b", sig_b, atoms_b)):
                sub = "{}_{}".format(name, suffix)
                hierarchy.add_class(sub, parents=[name])
                class_members[sub] = frozenset(part)
                for atom in part:
                    hierarchy.add_instance(atom, parents=[sub])
                subclasses.append((sub, sig))
        else:
            for atom in atoms:
                hierarchy.add_instance(atom, parents=[name])
        plan.append((name, signature, subclasses))

    out: Dict[str, HRelation] = {}
    hierarchical_count = 0
    flat_count = sum(len(m) for m in relations.values())
    for rel_name in sorted(relations):
        relation = HRelation([("x", hierarchy)], name=rel_name)
        for class_name, signature, subclasses in plan:
            if rel_name in signature:
                relation.assert_item((class_name,), truth=True)
                for sub, sub_sig in subclasses:
                    if rel_name not in sub_sig:
                        relation.assert_item((sub,), truth=False)
        hierarchical_count += len(relation)
        out[rel_name] = relation
    return DiscoveryResult(
        hierarchy=hierarchy,
        relations=out,
        flat_tuple_count=flat_count,
        hierarchical_tuple_count=hierarchical_count,
        class_members=class_members,
    )
