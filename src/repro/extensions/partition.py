"""Partition and covering declarations (section 3.2).

Two redundancy patterns the base model *cannot* detect without extra
expressive power:

* Fig. 5: a class C contained in the **union** of A and B — "without a
  notion of union … it is not possible to express the fact that C is a
  subset of A union B", so a tuple on C is never considered redundant.
* The dual: C **partitioned** into A and B ("every instance of C is an
  instance of at least one of A or B") — "if there are tuples t_A and
  t_B defined for the sets A and B, then a tuple t_C is redundant, in
  that it is always overridden by one or the other".

:class:`PartitionRegistry` records such declarations, and
:func:`consolidate_with_partitions` extends consolidation to use them.
Every declaration is validated against the hierarchy (each part must be
a subclass of the whole) and, because membership can drift as the
hierarchy grows, each candidate removal is *verified*: the tuple is
dropped only if the relation's extension over the whole's cone is
unchanged — exactly the caution the paper voices ("if such a fact is
true … at some point in time, there is no guarantee that it will remain
true").
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.core import binding as _binding
from repro.core.consolidate import consolidate as _consolidate
from repro.core.relation import HRelation
from repro.errors import HierarchyError
from repro.hierarchy.graph import Hierarchy


class PartitionRegistry:
    """Declared coverings: ``whole ⊆ part₁ ∪ … ∪ partₖ`` per hierarchy.

    ``exhaustive=True`` (a partition) additionally promises the parts
    are subclasses of the whole that jointly exhaust it; a plain
    covering (Fig. 5's Venn diagram) only promises containment in the
    union.  Both enable the same consolidation rule here because
    removals are verified against the actual extension.
    """

    def __init__(self) -> None:
        self._coverings: Dict[int, List[Tuple[str, Tuple[str, ...]]]] = {}

    def declare(
        self,
        hierarchy: Hierarchy,
        whole: str,
        parts: Sequence[str],
        exhaustive: bool = True,
    ) -> None:
        if len(parts) < 2:
            raise HierarchyError("a covering needs at least two parts")
        for node in (whole, *parts):
            if node not in hierarchy:
                raise HierarchyError(
                    "unknown node {!r} in hierarchy {!r}".format(node, hierarchy.name)
                )
        if exhaustive:
            for part in parts:
                if not hierarchy.subsumes(whole, part):
                    raise HierarchyError(
                        "partition part {!r} is not a subclass of {!r}".format(
                            part, whole
                        )
                    )
            covered: Set[str] = set()
            for part in parts:
                covered |= set(hierarchy.leaves_under(part))
            missing = set(hierarchy.leaves_under(whole)) - covered
            if missing:
                raise HierarchyError(
                    "parts do not exhaust {!r}: missing {}".format(
                        whole, sorted(missing)
                    )
                )
        self._coverings.setdefault(id(hierarchy), []).append((whole, tuple(parts)))

    def coverings_for(self, hierarchy: Hierarchy) -> List[Tuple[str, Tuple[str, ...]]]:
        return list(self._coverings.get(id(hierarchy), ()))


def consolidate_with_partitions(
    relation: HRelation, registry: PartitionRegistry, name: str | None = None
) -> HRelation:
    """Partition-aware removals, then standard consolidation.

    For every tuple whose value on some attribute is a declared whole,
    if every part carries its own asserted tuple (same item elsewhere),
    tentatively drop the whole's tuple and keep the drop only when the
    flat extension over the whole's cone is unchanged.  This pass runs
    *before* the ordinary one: standard consolidation would otherwise
    remove the parts' tuples as redundant under the whole first — the
    very trap §3.2 warns about for conflict-resolving tuples.
    """
    out = relation.copy(name=name or relation.name)
    changed = True
    while changed:
        changed = False
        for item in list(out.items()):
            for index, hierarchy in enumerate(out.schema.hierarchies):
                for whole, parts in registry.coverings_for(hierarchy):
                    if item[index] != whole:
                        continue
                    part_items = [
                        item[:index] + (part,) + item[index + 1:] for part in parts
                    ]
                    if not all(p in out.asserted for p in part_items):
                        continue
                    if _cone_extension_unchanged(out, item):
                        out.retract(item)
                        changed = True
                        break
                if changed:
                    break
            if changed:
                break
    return _consolidate(out, name=name or relation.name)


def _cone_extension_unchanged(relation: HRelation, item) -> bool:
    """Would retracting ``item`` leave every atom under it unchanged?"""
    trial = relation.copy(name="trial")
    trial.retract(item)
    for atom in relation.schema.product.leaves_under(item):
        try:
            before = _binding.truth_of(relation, atom)
            after = _binding.truth_of(trial, atom)
        except Exception:
            return False
        if before != after:
            return False
    # Removing a tuple can also surface new conflicts elsewhere; verify.
    return not trial.conflicts()
