"""Three-valued assertions: TRUE / FALSE / UNKNOWN (section 4).

The base model makes the closed-world assumption: an item below no
asserted tuple is *false*.  Dropping that assumption means the default
becomes *unknown*, and negated tuples now carry real information at the
top of the lattice rather than being redundant defaults.  This module
provides :class:`ThreeValuedRelation`, a sibling of
:class:`~repro.core.relation.HRelation` with:

* per-tuple truth in {TRUE, FALSE, UNKNOWN} — asserting UNKNOWN is
  meaningful: it *cancels inheritance* below a class without committing
  either way;
* off-path binding with the same minimal-binder rule; mixed binders are
  a conflict exactly as before;
* ``truth_of`` returning :class:`TruthValue3` with UNKNOWN as default;
* ``to_closed_world()`` mapping back into the two-valued model
  (UNKNOWN -> FALSE) for interoperation.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.relation import HRelation
from repro.core.schema import RelationSchema
from repro.errors import AmbiguityError, TupleError
from repro.hierarchy.graph import Hierarchy
from repro.hierarchy.product import Item


class TruthValue3(enum.Enum):
    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    @property
    def sign(self) -> str:
        return {"true": "+", "false": "-", "unknown": "?"}[self.value]


class ThreeValuedRelation:
    """A hierarchical relation over the three-valued truth lattice.

    Examples
    --------
    >>> h = Hierarchy("animal")
    >>> h.add_class("bird")
    >>> h.add_instance("tweety", parents=["bird"])
    >>> r = ThreeValuedRelation([("creature", h)], name="sings")
    >>> r.truth_of(("tweety",))        # open world: nothing known
    <TruthValue3.UNKNOWN: 'unknown'>
    >>> r.assert_item(("bird",), TruthValue3.TRUE)
    >>> r.truth_of(("tweety",))
    <TruthValue3.TRUE: 'true'>
    """

    def __init__(
        self,
        schema: RelationSchema | Sequence[Tuple[str, Hierarchy]],
        name: str = "relation3",
    ) -> None:
        if not isinstance(schema, RelationSchema):
            schema = RelationSchema(schema)
        self.schema = schema
        self.name = name
        # Insertion order lives in the dict itself, so retraction is O(1).
        self._tuples: Dict[Item, TruthValue3] = {}

    # ------------------------------------------------------------------

    def assert_item(
        self,
        item: Sequence[str],
        truth: TruthValue3 = TruthValue3.TRUE,
        replace: bool = False,
    ) -> None:
        key = self.schema.check_item(item)
        if key in self._tuples and self._tuples[key] != truth and not replace:
            raise TupleError(
                "item ({}) already asserted as {}".format(
                    ", ".join(key), self._tuples[key].value
                )
            )
        self._tuples[key] = truth

    def retract(self, item: Sequence[str]) -> None:
        key = self.schema.check_item(item)
        if key not in self._tuples:
            raise TupleError("no tuple asserted at ({})".format(", ".join(key)))
        del self._tuples[key]

    def tuples(self) -> List[Tuple[Item, TruthValue3]]:
        return list(self._tuples.items())

    def __len__(self) -> int:
        return len(self._tuples)

    # ------------------------------------------------------------------

    def strongest_binders(self, item: Sequence[str]) -> List[Tuple[Item, TruthValue3]]:
        """Off-path minimal binders, as in the two-valued model."""
        key = self.schema.check_item(item)
        product = self.schema.product
        if key in self._tuples:
            return [(key, self._tuples[key])]
        relevant = [
            other for other in self._tuples if other != key and product.subsumes(other, key)
        ]
        pool = set(relevant)
        minimal = [
            a
            for a in relevant
            if not any(b != a and product.binding_subsumes(a, b) for b in pool)
        ]
        minimal.sort(key=product.topological_key)
        return [(other, self._tuples[other]) for other in minimal]

    def truth_of(self, item: Sequence[str]) -> TruthValue3:
        """Open-world truth: UNKNOWN when nothing applies; conflicts
        raise :class:`AmbiguityError` exactly as in the base model."""
        binders = self.strongest_binders(item)
        if not binders:
            return TruthValue3.UNKNOWN
        values = {truth for _, truth in binders}
        if len(values) == 1:
            return binders[0][1]
        raise AmbiguityError(
            tuple(item), [(b, t.value) for b, t in binders]
        )

    def known_extension(self) -> Dict[Item, TruthValue3]:
        """Every atomic item whose truth is not UNKNOWN."""
        out: Dict[Item, TruthValue3] = {}
        seen = set()
        for item in self._tuples:
            for atom in self.schema.product.leaves_under(item):
                if atom in seen:
                    continue
                seen.add(atom)
                truth = self.truth_of(atom)
                if truth is not TruthValue3.UNKNOWN:
                    out[atom] = truth
        return out

    # ------------------------------------------------------------------

    def to_closed_world(self, name: Optional[str] = None) -> HRelation:
        """The two-valued projection: UNKNOWN-asserted tuples vanish
        (the closed world already defaults below them to false at the
        atom level only if nothing else applies — to preserve the
        cancellation semantics, UNKNOWN tuples are mapped to negated
        tuples, the closest two-valued reading)."""
        out = HRelation(self.schema, name=name or self.name)
        for item, truth in self.tuples():
            out.assert_item(item, truth=(truth is TruthValue3.TRUE))
        return out

    @classmethod
    def from_hrelation(cls, relation: HRelation, name: Optional[str] = None) -> "ThreeValuedRelation":
        out = cls(relation.schema, name=name or relation.name)
        for t in relation.tuples():
            out.assert_item(t.item, TruthValue3.TRUE if t.truth else TruthValue3.FALSE)
        return out

    def __repr__(self) -> str:
        return "ThreeValuedRelation({!r}, {} tuples)".format(self.name, len(self))


# ----------------------------------------------------------------------
# Kleene (K3) algebra over three-valued relations
# ----------------------------------------------------------------------
#
# The meet-closure pointwise combinator of repro.core.algebra carries
# over unchanged: for consistent inputs, the truth at every minimal
# emitted candidate equals the truth at the items below it, and items
# under no candidate take the default — which here is UNKNOWN, so the
# combining function must preserve it: fn(UNKNOWN, …, UNKNOWN) ==
# UNKNOWN.  Kleene's strong connectives do (U∨U = U, U∧U = U, ¬U = U),
# which also makes *complement* expressible — something the two-valued
# closed world cannot offer.


def kleene_or(*values: TruthValue3) -> TruthValue3:
    if TruthValue3.TRUE in values:
        return TruthValue3.TRUE
    if all(v is TruthValue3.FALSE for v in values):
        return TruthValue3.FALSE
    return TruthValue3.UNKNOWN


def kleene_and(*values: TruthValue3) -> TruthValue3:
    if TruthValue3.FALSE in values:
        return TruthValue3.FALSE
    if all(v is TruthValue3.TRUE for v in values):
        return TruthValue3.TRUE
    return TruthValue3.UNKNOWN


def kleene_not(value: TruthValue3) -> TruthValue3:
    if value is TruthValue3.TRUE:
        return TruthValue3.FALSE
    if value is TruthValue3.FALSE:
        return TruthValue3.TRUE
    return TruthValue3.UNKNOWN


def combine3(relations, fn, name: str = "combined3") -> "ThreeValuedRelation":
    """The pointwise combinator over the three-valued lattice.

    ``fn`` maps a tuple of :class:`TruthValue3` to one, and must satisfy
    ``fn(UNKNOWN, …, UNKNOWN) == UNKNOWN`` (checked) so that items below
    no candidate keep the open-world default.
    """
    from repro.errors import SchemaError
    from repro.core.algebra import meet_closure

    if not relations:
        raise SchemaError("combine3 needs at least one relation")
    schema = relations[0].schema
    for other in relations[1:]:
        schema.require_same_as(other.schema, "combine3")
    unknowns = tuple([TruthValue3.UNKNOWN] * len(relations))
    if fn(*unknowns) is not TruthValue3.UNKNOWN:
        raise SchemaError(
            "combine3 requires fn(UNKNOWN, ..., UNKNOWN) == UNKNOWN"
        )
    seeds = set()
    for relation in relations:
        seeds.update(item for item, _ in relation.tuples())
    product = schema.product
    out = ThreeValuedRelation(schema, name=name)
    for item in sorted(meet_closure(product, seeds), key=product.topological_key):
        out.assert_item(item, fn(*(r.truth_of(item) for r in relations)))
    return out


def union3(left: "ThreeValuedRelation", right: "ThreeValuedRelation",
           name: Optional[str] = None) -> "ThreeValuedRelation":
    """Kleene disjunction, pointwise on the flat semantics."""
    return combine3(
        [left, right], kleene_or, name=name or "{}_or_{}".format(left.name, right.name)
    )


def intersection3(left: "ThreeValuedRelation", right: "ThreeValuedRelation",
                  name: Optional[str] = None) -> "ThreeValuedRelation":
    """Kleene conjunction, pointwise on the flat semantics."""
    return combine3(
        [left, right], kleene_and, name=name or "{}_and_{}".format(left.name, right.name)
    )


def complement3(relation: "ThreeValuedRelation",
                name: Optional[str] = None) -> "ThreeValuedRelation":
    """Kleene negation — well-defined here because the open-world
    default (UNKNOWN) is its own negation."""
    return combine3(
        [relation], kleene_not, name=name or "not_{}".format(relation.name)
    )
