"""Extensions the paper's conclusion and section 3.2 sketch as future work.

* :mod:`threevalued` — "through the use of … three-valued (positive,
  negative, and unknown) rather than two-valued assertions, it may be
  possible to have a sound and conceptually pleasing treatment of
  partial information" (section 4).
* :mod:`discovery` — "the database system could mechanically organize
  traditional relation(s) … into hierarchical relations with classes
  being defined in such a way that storage is minimized" (section 4).
* :mod:`partition` — "such redundancy cannot be detected unless there is
  a way to express the concepts of partition and mutual exhaustion in
  the data model" (section 3.2).
"""

from repro.extensions.discovery import (
    DiscoveryResult,
    discover_hierarchy,
    discover_with_exceptions,
)
from repro.extensions.partition import PartitionRegistry, consolidate_with_partitions
from repro.extensions.threevalued import (
    ThreeValuedRelation,
    TruthValue3,
    combine3,
    complement3,
    intersection3,
    kleene_and,
    kleene_not,
    kleene_or,
    union3,
)

__all__ = [
    "TruthValue3",
    "ThreeValuedRelation",
    "combine3",
    "union3",
    "intersection3",
    "complement3",
    "kleene_or",
    "kleene_and",
    "kleene_not",
    "DiscoveryResult",
    "discover_hierarchy",
    "discover_with_exceptions",
    "PartitionRegistry",
    "consolidate_with_partitions",
]
