"""Rendering: ASCII tables in the paper's figure style, and DOT export."""

from repro.render.dot import hierarchy_to_dot, graph_to_dot
from repro.render.table import render_relation, render_rows, render_justification

__all__ = [
    "render_relation",
    "render_rows",
    "render_justification",
    "hierarchy_to_dot",
    "graph_to_dot",
]
