"""Rendering: ASCII tables in the paper's figure style, and DOT export."""

from repro.render.table import render_relation, render_rows, render_justification
from repro.render.dot import hierarchy_to_dot, graph_to_dot

__all__ = [
    "render_relation",
    "render_rows",
    "render_justification",
    "hierarchy_to_dot",
    "graph_to_dot",
]
