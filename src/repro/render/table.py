"""ASCII tables styled after the paper's figures.

The figures print one row per stored tuple: a sign column (``+`` or
``-``), then one column per attribute, with class values prefixed by the
universal quantifier (rendered here as ``∀``).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_rows(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """A plain fixed-width table with a header rule."""
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    rule = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = [rule, line(list(headers)), rule]
    for row in materialised:
        out.append(line(row))
    out.append(rule)
    return "\n".join(out)


def relation_rows(relation) -> List[List[str]]:
    """One row per stored tuple: sign, then per-attribute values with
    class values shown as ``∀class``."""
    rows: List[List[str]] = []
    for t in relation.tuples():
        cells = [t.sign]
        for hierarchy, value in zip(relation.schema.hierarchies, t.item):
            cells.append(value if hierarchy.is_leaf(value) else "∀" + value)
        rows.append(cells)
    return rows


def render_relation(relation) -> str:
    """The whole relation as a figure-style table, titled by its name."""
    headers = [""] + list(relation.schema.attributes)
    table = render_rows(headers, relation_rows(relation))
    return "{}\n{}".format(relation.name, table)


def render_justification(justification) -> str:
    """Fig. 9b style: the answer plus the applicable stored tuples."""
    verdict = {True: "true", False: "false", None: "CONFLICT"}[justification.truth]
    lines = [
        "item ({}) -> {}".format(", ".join(justification.item), verdict),
        "decided by: {}".format(
            ", ".join(str(t) for t in justification.deciders) or "-(D*) [default]"
        ),
        "applicable tuples (most specific first):",
    ]
    for t in justification.applicable:
        lines.append("  {}".format(t))
    if not justification.applicable:
        lines.append("  (none)")
    return "\n".join(lines)
