"""Graphviz DOT export of hierarchies and derived graphs.

Pure string generation — no graphviz dependency; paste the output into
any DOT renderer to get the paper's Fig. 1a/1c/1d pictures.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.core.htuple import UNIVERSAL


def _quote(label: object) -> str:
    if label is UNIVERSAL:
        text = "-(D*)"
    elif isinstance(label, tuple):
        text = ", ".join(str(part) for part in label)
    else:
        text = str(label)
    return '"{}"'.format(text.replace('"', r"\""))


def hierarchy_to_dot(hierarchy, name: str | None = None) -> str:
    """The class graph (solid edges) plus preference edges (dashed)."""
    lines = ["digraph {} {{".format((name or hierarchy.name).replace("-", "_"))]
    lines.append("  rankdir=TB;")
    for node in hierarchy.nodes():
        shape = "box" if hierarchy.is_instance(node) else "ellipse"
        lines.append("  {} [shape={}];".format(_quote(node), shape))
    for parent, child in hierarchy.edges():
        lines.append("  {} -> {};".format(_quote(parent), _quote(child)))
    for weaker, stronger in hierarchy.preference_edges():
        lines.append(
            "  {} -> {} [style=dashed, label=prefer];".format(
                _quote(weaker), _quote(stronger)
            )
        )
    lines.append("}")
    return "\n".join(lines)


def graph_to_dot(
    graph: Dict[object, Set[object]],
    name: str = "graph",
    signs: Dict[object, bool] | None = None,
) -> str:
    """A generic digraph (e.g. a subsumption or tuple-binding graph).

    ``signs`` optionally maps nodes to truth values: positive nodes are
    drawn solid, negated ones dashed, matching the figures' +/- marks.
    """
    lines = ["digraph {} {{".format(name.replace("-", "_"))]
    nodes: Set[object] = set(graph)
    for succs in graph.values():
        nodes.update(succs)
    for node in sorted(nodes, key=str):
        style = ""
        if signs is not None and node in signs:
            style = ' [style={}]'.format("solid" if signs[node] else "dashed")
        lines.append("  {}{};".format(_quote(node), style))
    for node in sorted(graph, key=str):
        for succ in sorted(graph[node], key=str):
            lines.append("  {} -> {};".format(_quote(node), _quote(succ)))
    lines.append("}")
    return "\n".join(lines)
