"""The standard (flat) relational model the paper extends.

This package serves three roles:

* the **upward-compatibility layer** of section 4 — a flat relation is
  the degenerate hierarchical relation whose every value is atomic, and
  :func:`from_hrelation` / :func:`to_hrelation` move between the two;
* the **reference oracle** for the property-based tests: every
  hierarchical operator must commute with flattening;
* the **footnote-1 baseline** (``membership``): class membership stored
  in a separate relation and queried with repeated joins, the design the
  introduction argues degrades performance.
"""

from repro.flat import algebra
from repro.flat import io
from repro.flat.membership import MembershipBaseline
from repro.flat.relation import FlatRelation, from_hrelation, to_hrelation

__all__ = [
    "FlatRelation",
    "from_hrelation",
    "to_hrelation",
    "algebra",
    "io",
    "MembershipBaseline",
]
