"""The footnote-1 baseline: membership as data, queried by joins.

Section 1, footnote 1: "One could, of course, store the class
membership in a separate relation and keep only a single tuple with a
class name … in the standard relational model.  The problem then is
that repeated joins are required, causing a degradation in
performance."

:class:`MembershipBaseline` implements exactly that design so the P2
benchmark can measure the degradation: the hierarchy's transitive
membership is materialised into an ``isa(member, class)`` flat relation,
properties are flat relations of class names, and every query is a join.
Exceptions (negated tuples) are out of scope here, as they are for the
footnote's strawman.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set

from repro.flat import algebra
from repro.flat.relation import FlatRelation
from repro.hierarchy.graph import Hierarchy


class MembershipBaseline:
    """Class membership in a relation; property queries via joins."""

    def __init__(self, hierarchy: Hierarchy) -> None:
        self.hierarchy = hierarchy
        rows = []
        for node in hierarchy.nodes():
            for descendant in hierarchy.descendants(node):
                rows.append((descendant, node))
        #: member -> every class it transitively belongs to (incl. itself)
        self.isa = FlatRelation(["member", "klass"], rows, name="isa")
        self._properties: Dict[str, FlatRelation] = {}

    def set_property(self, name: str, classes: Sequence[str]) -> None:
        """Record that every member of each class has the property —
        one row per class name, the 'single tuple with a class name'."""
        self._properties[name] = FlatRelation(
            ["klass"], [(klass,) for klass in classes], name=name
        )

    def property_relation(self, name: str) -> FlatRelation:
        return self._properties[name]

    def members_with_property(self, name: str) -> FlatRelation:
        """The flat extension of the property, via the join the footnote
        complains about: ``isa ⋈ property`` projected onto member."""
        joined = algebra.join(self.isa, self._properties[name])
        return algebra.project(joined, ["member"], name="{}_members".format(name))

    def has_property(self, member: str, name: str) -> bool:
        """Point query, still by join-then-probe (the baseline has no
        shortcut: that is its point)."""
        mine = algebra.select_eq(self.isa, {"member": member})
        joined = algebra.join(mine, self._properties[name])
        return len(joined) > 0

    def leaf_members_with_property(self, name: str) -> Set[str]:
        """Leaves only, to compare against HRelation.extension()."""
        out: Set[str] = set()
        for (member,) in self.members_with_property(name).rows():
            if self.hierarchy.is_leaf(member):
                out.add(member)
        return out

    def storage_rows(self, name: str) -> int:
        """Total stored rows backing the property: membership plus the
        property relation itself."""
        return len(self.isa) + len(self._properties[name])
