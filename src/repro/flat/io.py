"""CSV import/export for relations.

Flat relations read and write plain CSV (header row = attribute names).
A hierarchical relation exports two ways: its stored *assertions*
(with a leading ``truth`` column — lossless) or its flat *extension*
(interoperable with any tool); and a CSV of atoms can be lifted into a
hierarchical relation over an existing schema.
"""

from __future__ import annotations

import csv

from repro.errors import SchemaError, StorageError
from repro.flat.relation import FlatRelation

TRUTH_COLUMN = "truth"
_TRUE_WORDS = {"true", "1", "+", "yes"}
_FALSE_WORDS = {"false", "0", "-", "no"}


def save_flat_csv(relation: FlatRelation, path: str) -> None:
    """Write a flat relation as CSV with a header row."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.attributes)
        for row in relation.sorted_rows():
            writer.writerow(row)


def load_flat_csv(path: str, name: str = "csv") -> FlatRelation:
    """Read a CSV (header row = attributes) into a flat relation."""
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError("empty CSV file: {}".format(path)) from None
        relation = FlatRelation(header, name=name)
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise StorageError(
                    "{}:{}: expected {} columns, found {}".format(
                        path, line_number, len(header), len(row)
                    )
                )
            relation.add(row)
        return relation


def save_assertions_csv(relation, path: str) -> None:
    """Write a hierarchical relation's stored tuples: ``truth`` column
    first, then one column per attribute.  Lossless."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([TRUTH_COLUMN, *relation.schema.attributes])
        for t in relation.tuples():
            writer.writerow(["true" if t.truth else "false", *t.item])


def load_assertions_csv(path: str, schema, name: str = "csv"):
    """Rebuild a hierarchical relation from :func:`save_assertions_csv`
    output (values must be nodes of the schema's hierarchies)."""
    from repro.core.relation import HRelation

    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError("empty CSV file: {}".format(path)) from None
        if not header or header[0] != TRUTH_COLUMN:
            raise StorageError(
                "{}: first column must be {!r}".format(path, TRUTH_COLUMN)
            )
        if tuple(header[1:]) != tuple(schema.attributes):
            raise SchemaError(
                "CSV attributes {} do not match schema {}".format(
                    header[1:], list(schema.attributes)
                )
            )
        relation = HRelation(schema, name=name)
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            word = row[0].strip().lower()
            if word in _TRUE_WORDS:
                truth = True
            elif word in _FALSE_WORDS:
                truth = False
            else:
                raise StorageError(
                    "{}:{}: unreadable truth value {!r}".format(path, line_number, row[0])
                )
            relation.assert_item(tuple(row[1:]), truth=truth)
        return relation


def save_extension_csv(relation, path: str) -> None:
    """Write a hierarchical relation's flat extension (positive atoms
    only) — the interoperable export."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.attributes)
        for atom in sorted(relation.extension()):
            writer.writerow(atom)


def load_extension_csv(path: str, schema, name: str = "csv"):
    """Lift a CSV of atoms into a hierarchical relation (one positive
    tuple per row) — upward compatibility from files."""
    from repro.flat.relation import to_hrelation

    flat = load_flat_csv(path, name=name)
    return to_hrelation(flat, schema, name=name)
