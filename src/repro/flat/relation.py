"""Flat relations: plain sets of atomic tuples over named attributes.

A deliberately classical implementation — a relation is a frozenset-like
collection of value tuples plus an attribute list — so that the
hierarchical model can be tested against textbook semantics.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.errors import SchemaError

Row = Tuple[str, ...]


class FlatRelation:
    """An immutable-ish standard relation.

    Examples
    --------
    >>> r = FlatRelation(["who"], [("tweety",), ("peter",)], name="flies")
    >>> len(r)
    2
    """

    def __init__(
        self,
        attributes: Sequence[str],
        rows: Iterable[Sequence[str]] = (),
        name: str = "flat",
    ) -> None:
        if not attributes:
            raise SchemaError("a flat relation needs at least one attribute")
        names = list(attributes)
        if len(set(names)) != len(names):
            raise SchemaError("duplicate attribute names: {}".format(names))
        self.attributes: Tuple[str, ...] = tuple(names)
        self.name = name
        self._rows: Set[Row] = set()
        for row in rows:
            self.add(row)

    # ------------------------------------------------------------------

    def add(self, row: Sequence[str]) -> None:
        values = tuple(row)
        if len(values) != len(self.attributes):
            raise SchemaError(
                "row {} has arity {}, expected {}".format(
                    values, len(values), len(self.attributes)
                )
            )
        self._rows.add(values)

    def discard(self, row: Sequence[str]) -> None:
        self._rows.discard(tuple(row))

    def rows(self) -> FrozenSet[Row]:
        return frozenset(self._rows)

    def sorted_rows(self) -> List[Row]:
        return sorted(self._rows)

    def index_of(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                "unknown attribute {!r}; relation has {}".format(
                    attribute, list(self.attributes)
                )
            ) from None

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(sorted(self._rows))

    def __contains__(self, row: object) -> bool:
        return tuple(row) in self._rows  # type: ignore[arg-type]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FlatRelation)
            and self.attributes == other.attributes
            and self._rows == other._rows
        )

    def __hash__(self) -> int:
        return hash((self.attributes, frozenset(self._rows)))

    def copy(self, name: str | None = None) -> "FlatRelation":
        return FlatRelation(self.attributes, self._rows, name=name or self.name)

    def __repr__(self) -> str:
        return "FlatRelation({!r}, {} rows, attrs={})".format(
            self.name, len(self), list(self.attributes)
        )


def from_hrelation(relation, name: str | None = None) -> FlatRelation:
    """The unique equivalent flat relation of a hierarchical relation:
    its atomic extension (section 2's equivalence)."""
    return FlatRelation(
        relation.schema.attributes,
        relation.extension(),
        name=name or relation.name,
    )


def to_hrelation(flat: FlatRelation, schema, name: str | None = None):
    """Lift a flat relation into the hierarchical model unchanged
    (upward compatibility): one positive tuple per row.

    Every row value must be a node of the corresponding hierarchy in
    ``schema`` (typically a leaf; class names are accepted and then mean
    universal quantification, which is the model's whole point)."""
    from repro.core.relation import HRelation

    if tuple(flat.attributes) != tuple(schema.attributes):
        raise SchemaError(
            "schema attributes {} do not match flat attributes {}".format(
                list(schema.attributes), list(flat.attributes)
            )
        )
    out = HRelation(schema, name=name or flat.name)
    for row in flat.sorted_rows():
        out.assert_item(row, truth=True)
    return out
