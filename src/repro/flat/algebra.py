"""Textbook relational algebra over :class:`FlatRelation`.

These are the *reference semantics*: the property-based suite asserts,
for every hierarchical operator ``op``, that
``flatten(op(R…)) == flat_op(flatten(R)…)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Sequence

from repro.errors import SchemaError
from repro.flat.relation import FlatRelation, Row


def _require_same(left: FlatRelation, right: FlatRelation, op: str) -> None:
    if left.attributes != right.attributes:
        raise SchemaError(
            "{} requires identical attribute lists; got {} and {}".format(
                op, list(left.attributes), list(right.attributes)
            )
        )


def union(left: FlatRelation, right: FlatRelation, name: str = "union") -> FlatRelation:
    _require_same(left, right, "union")
    return FlatRelation(left.attributes, left.rows() | right.rows(), name=name)


def intersection(
    left: FlatRelation, right: FlatRelation, name: str = "intersection"
) -> FlatRelation:
    _require_same(left, right, "intersection")
    return FlatRelation(left.attributes, left.rows() & right.rows(), name=name)


def difference(
    left: FlatRelation, right: FlatRelation, name: str = "difference"
) -> FlatRelation:
    _require_same(left, right, "difference")
    return FlatRelation(left.attributes, left.rows() - right.rows(), name=name)


def select(
    relation: FlatRelation,
    predicate: Callable[[Dict[str, str]], bool],
    name: str = "selection",
) -> FlatRelation:
    """Selection by arbitrary predicate over an attribute->value dict."""
    rows = []
    for row in relation.rows():
        mapping = dict(zip(relation.attributes, row))
        if predicate(mapping):
            rows.append(row)
    return FlatRelation(relation.attributes, rows, name=name)


def select_eq(
    relation: FlatRelation, conditions: Mapping[str, str], name: str = "selection"
) -> FlatRelation:
    """Conjunctive equality selection."""
    indices = {relation.index_of(a): v for a, v in conditions.items()}
    rows = [
        row
        for row in relation.rows()
        if all(row[i] == v for i, v in indices.items())
    ]
    return FlatRelation(relation.attributes, rows, name=name)


def project(
    relation: FlatRelation, attributes: Sequence[str], name: str = "projection"
) -> FlatRelation:
    indices = [relation.index_of(a) for a in attributes]
    rows = {tuple(row[i] for i in indices) for row in relation.rows()}
    return FlatRelation(attributes, rows, name=name)


def join(left: FlatRelation, right: FlatRelation, name: str = "join") -> FlatRelation:
    """Natural join on the shared attribute names (hash join)."""
    shared = [a for a in left.attributes if a in right.attributes]
    left_idx = [left.index_of(a) for a in shared]
    right_idx = [right.index_of(a) for a in shared]
    right_extra = [a for a in right.attributes if a not in shared]
    right_extra_idx = [right.index_of(a) for a in right_extra]

    buckets: Dict[Row, list] = {}
    for row in right.rows():
        key = tuple(row[i] for i in right_idx)
        buckets.setdefault(key, []).append(tuple(row[i] for i in right_extra_idx))

    out_attributes = list(left.attributes) + right_extra
    rows = []
    for row in left.rows():
        key = tuple(row[i] for i in left_idx)
        for extra in buckets.get(key, ()):
            rows.append(tuple(row) + extra)
    return FlatRelation(out_attributes, rows, name=name)


def divide(
    dividend: FlatRelation, divisor: FlatRelation, name: str = "division"
) -> FlatRelation:
    """Relational division: the sub-tuples of ``dividend`` (over its
    attributes minus the divisor's) paired with *every* divisor row.

    The divisor's attributes must all appear in the dividend.
    """
    shared = list(divisor.attributes)
    for attribute in shared:
        dividend.index_of(attribute)  # raises SchemaError if missing
    kept = [a for a in dividend.attributes if a not in set(shared)]
    if not kept:
        raise SchemaError("division needs at least one surviving attribute")
    kept_idx = [dividend.index_of(a) for a in kept]
    shared_idx = [dividend.index_of(a) for a in shared]
    needed = divisor.rows()
    seen: Dict[Row, set] = {}
    for row in dividend.rows():
        key = tuple(row[i] for i in kept_idx)
        seen.setdefault(key, set()).add(tuple(row[i] for i in shared_idx))
    rows = [key for key, partners in seen.items() if needed <= partners]
    return FlatRelation(kept, rows, name=name)


def rename(
    relation: FlatRelation, mapping: Mapping[str, str], name: str = "renamed"
) -> FlatRelation:
    unknown = set(mapping) - set(relation.attributes)
    if unknown:
        raise SchemaError("cannot rename unknown attributes {}".format(sorted(unknown)))
    attributes = [mapping.get(a, a) for a in relation.attributes]
    return FlatRelation(attributes, relation.rows(), name=name)
