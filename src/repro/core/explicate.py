"""The ``explicate`` operator (section 3.3.2).

Explication flattens a relation — wholly, or over a chosen subset of its
attributes — to the unique extension in which the chosen attributes
carry only atomic values.  It is the inverse direction of condensation,
"useful when a count, average, or other statistical operation is to be
performed over the relation".

Algorithm (verbatim from the paper): traverse the relation subsumption
graph in reverse topologically sorted order; for the tuple at each node,
enumerate the membership of the classes valued in the attributes to be
explicated; insert each enumerated tuple into the result unless a tuple
for the same item was already inserted.  First-writer-wins is sound
because the traversal order puts every more specific tuple first, so for
any atom the first applicable writer is one of its minimal binders —
which, in a consistent relation, all agree.

After a *full* explication every negated tuple in the result is
redundant (the subsumption graph degenerates into isolated atoms under
the universal negated root), so they are dropped by default; after a
*partial* explication the negated tuples still cancel class-valued
tuples on the untouched attributes and are retained.

A full explication that drops negated tuples is exactly the flat
extension, so it is served by the bulk truth evaluator
(:mod:`repro.core.bulk`): one subsumption sweep, then a bitset lookup
per atom — and the negative tuples' cones are never enumerated at all
(any true atom below a negative tuple lies below its positive
counter-binder too).  A relation that turns out to be inconsistent
falls back to the writer-order algorithm so the historical output is
preserved; partial explications always use it.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence

from repro.errors import SchemaError
from repro.hierarchy.product import Item


def explicate(
    relation,
    attributes: Sequence[str] | None = None,
    drop_negated: bool | None = None,
    name: str | None = None,
):
    """Flatten ``relation`` over ``attributes`` (default: all of them).

    Parameters
    ----------
    attributes:
        The attributes whose values must become atomic.  ``None`` means
        every attribute — a full explication to the flat extension.
    drop_negated:
        Whether to drop negated result tuples.  Defaults to ``True`` for
        a full explication (where they are provably redundant) and
        ``False`` for a partial one (where they are not).
    """
    schema = relation.schema
    if attributes is None:
        chosen = list(schema.attributes)
    else:
        chosen = list(attributes)
        for attribute in chosen:
            schema.index_of(attribute)
        if len(set(chosen)) != len(chosen):
            raise SchemaError("duplicate attributes in explicate: {}".format(chosen))
    full = set(chosen) == set(schema.attributes)
    if drop_negated is None:
        drop_negated = full
    if full and drop_negated:
        from repro import parallel as _parallel

        atoms = _parallel.maybe_extension(relation, raise_on_conflict=False)
        if atoms is _parallel.CONFLICT:
            atoms = None  # conflicted: legacy writer-order fallback below
        elif atoms is not None:
            atoms = _most_specific_order(relation, set(atoms))
        else:
            atoms = _bulk_extension(relation)
        if atoms is not None:
            out = relation.copy(name=name or relation.name)
            out.clear()
            for atom in atoms:
                out.assert_item(atom, truth=True)
            return out
    explicated_indices = {schema.index_of(a) for a in chosen}

    ordered = schema.product.topological_sort(relation.asserted, reverse=True)
    result: Dict[Item, bool] = {}
    insertion: List[Item] = []
    for item in ordered:
        truth = relation.asserted[item]
        expansions: List[List[str]] = []
        for index, value in enumerate(item):
            if index in explicated_indices:
                expansions.append(schema.hierarchies[index].leaves_under(value))
            else:
                expansions.append([value])
        for combo in itertools.product(*expansions):
            if combo not in result:
                result[combo] = truth
                insertion.append(combo)

    out = relation.copy(name=name or relation.name)
    out.clear()
    for item in insertion:
        truth = result[item]
        if drop_negated and not truth:
            continue
        out.assert_item(item, truth=truth)
    return out


def _most_specific_order(relation, keep) -> List[Item]:
    """Replay :func:`_bulk_extension`'s most-specific-writer-first
    enumeration over a precomputed atom set (membership tests only), so
    the parallel path inserts atoms in exactly the serial order."""
    product = relation.schema.product
    ordered = product.topological_sort(
        (item for item, truth in relation.asserted.items() if truth),
        reverse=True,
    )
    atoms: List[Item] = []
    seen = set()
    for item in ordered:
        for atom in product.leaves_under(item):
            if atom in seen:
                continue
            seen.add(atom)
            if atom in keep:
                atoms.append(atom)
    return atoms


def _bulk_extension(relation) -> List[Item] | None:
    """The positive atoms of ``relation`` via the bulk evaluator, in a
    deterministic most-specific-writer-first order, or ``None`` when a
    conflicted atom demands the legacy writer-order fallback."""
    from repro.core import bulk

    evaluator = bulk.evaluator_for(relation)
    product = relation.schema.product
    ordered = product.topological_sort(
        (item for item, truth in relation.asserted.items() if truth),
        reverse=True,
    )
    atoms: List[Item] = []
    seen = set()
    for item in ordered:
        for atom in product.leaves_under(item):
            if atom in seen:
                continue
            seen.add(atom)
            truth = evaluator.truth(atom)
            if truth is None:
                return None
            if truth:
                atoms.append(atom)
    return atoms


def extension_relation(relation, name: str | None = None):
    """The equivalent flat relation as an :class:`HRelation`: a full
    explication with negated tuples dropped.  Sugar used all over the
    test oracle."""
    return explicate(relation, attributes=None, drop_negated=True, name=name)
