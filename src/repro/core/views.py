"""Materialized views over hierarchical relations, with delta refresh.

A view is a named operator result that callers can query like a stored
relation; because every layer of this library is versioned (relations
bump a counter per mutation, hierarchies too), the view can tell
precisely when its cache is stale and recompute lazily.

This rounds out the paper's positioning of the model as a back-end for
reasoning systems: the front end "issues less queries to the database"
precisely when the database can keep derived relations fresh itself.

Two refresh paths
-----------------
Views defined through a :class:`ViewPlan` over the *pointwise* operators
(select, union, intersection, difference) keep the full
pre-consolidation candidate pool of the last recompute — every
meet-closure item with its combined truth value.  When a source mutates,
the view replays the source's delta log (:meth:`HRelation.
changes_since`) and re-evaluates only the candidates inside the union of
the mutated items' descendant cones (the *changed cones*, tested in bulk
via :func:`repro.core.bulk.cover_masks`), patching the cached relation
in place.  Correctness: a tuple at item *x* can influence exactly the
queries at items below *x*, so every candidate whose truth could have
moved is covered by some changed item; new meet candidates introduced by
the change are themselves below a changed item, hence also covered.

Everything else falls back to a full recompute: plans over join or
divide (their candidate sets are not patchable cone-locally), legacy
``compute=`` callables, hierarchy or strategy changes, exhausted delta
logs, replaced source objects, oversized change batches, and a changed
cone touching most of the pool (where full recompute is cheaper anyway).

Read-only handles
-----------------
:meth:`MaterializedView.relation` returns a :class:`ViewRelation` — the
cached object itself, guarded so that callers cannot corrupt the cache
by mutating what they were handed.  Use ``view.relation().copy()`` for
a private mutable copy.

Examples
--------
>>> # flyers = MaterializedView(
>>> #     "penguin_flyers",
>>> #     plan=ViewPlan("select", [flies], {"creature": "penguin"}))
>>> # flyers.relation()                  # computed once ...
>>> # flies.assert_item(("sparrow",))
>>> # flyers.relation()                  # ... patched, not recomputed
>>> # flyers.delta_refresh_count
>>> # 1
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro import obs as _obs
from repro.core import algebra as _algebra
from repro.core import binding as _binding
from repro.core import bulk as _bulk
from repro.core.relation import HRelation
from repro.errors import ViewError
from repro.hierarchy.product import Item

#: A view source: a relation, or a zero-argument callable resolving to
#: one (e.g. a catalog lookup, so DROP + CREATE re-binds by name).
Source = Union[HRelation, Callable[[], HRelation]]


def _stamp(sources: Sequence[HRelation]) -> Tuple:
    return tuple(
        (r.version, r.schema.product.version, r.strategy.name) for r in sources
    )


def _is_bottom(schema, item: Item) -> bool:
    """True iff ``item`` has no strict descendant in any attribute — its
    cone is itself, so it covers nothing else and meets nothing new.
    The delta path skips the whole-hierarchy posting sweeps for such
    items, making instance-level churn O(pool) instead of O(hierarchy)."""
    return all(
        hierarchy.descendant_mask(value).bit_count() == 1
        for hierarchy, value in zip(schema.hierarchies, item)
    )


class ViewRelation(HRelation):
    """The read-only handle a view hands out.

    It *is* the cached relation (no per-access copy), but every mutator
    raises :class:`ViewError`: historically ``view.relation()`` returned
    the live cache, so one stray ``assert_item`` corrupted every later
    read.  ``copy()`` still returns a plain mutable :class:`HRelation`.
    The view's own delta-refresh path patches through the base class on
    purpose.
    """

    _frozen = False

    def _refuse(self, operation: str) -> None:
        raise ViewError(
            "{!r} is a materialized-view result; {} would corrupt the view "
            "cache.  Mutate the view's sources, or take a private copy "
            "with .copy() first.".format(self.name, operation)
        )

    def assert_item(self, item, truth: bool = True, replace: bool = False) -> None:
        if self._frozen:
            self._refuse("assert_item")
        HRelation.assert_item(self, item, truth=truth, replace=replace)

    def retract(self, item) -> None:
        if self._frozen:
            self._refuse("retract")
        HRelation.retract(self, item)

    def discard(self, item) -> bool:
        if self._frozen:
            self._refuse("discard")
        return HRelation.discard(self, item)

    def clear(self) -> None:
        if self._frozen:
            self._refuse("clear")
        HRelation.clear(self)

    @classmethod
    def adopt(cls, relation: HRelation, name: str) -> "ViewRelation":
        """Wrap a freshly computed relation (storage is taken over, not
        copied — the input must be private to the caller)."""
        out = cls(relation.schema, name=name, strategy=relation.strategy)
        out._tuples = relation._tuples
        out._version = relation._version
        out._delta_log = relation._delta_log
        out._delta_floor = relation._delta_floor
        out._frozen = True
        return out


class ViewPlan:
    """A declarative view definition the engine can refresh incrementally.

    Parameters
    ----------
    op:
        One of ``select``, ``union``, ``intersection``, ``difference``
        (delta-capable) or ``join``, ``divide`` (always fully
        recomputed).
    sources:
        One relation for ``select``, two for the binary operators.  Each
        may be a zero-argument callable, resolved on every access — pass
        catalog lookups so the view follows DROP + CREATE by name.
    conditions:
        The attribute -> class mapping for ``select`` (required there,
        forbidden elsewhere).
    """

    #: Operators whose candidate pool the delta path can patch in place.
    DELTA_OPS = frozenset({"select", "union", "intersection", "difference"})

    _BINARY = {
        "union": _algebra.union,
        "intersection": _algebra.intersection,
        "difference": _algebra.difference,
        "join": _algebra.join,
        "divide": _algebra.divide,
    }

    def __init__(
        self,
        op: str,
        sources: Sequence[Source],
        conditions: Optional[Mapping[str, str]] = None,
    ) -> None:
        op = op.lower()
        if op == "select":
            if len(sources) != 1:
                raise ValueError("a select plan takes exactly one source")
            if not conditions:
                raise ValueError(
                    "a select plan needs a non-empty conditions mapping "
                    "(an unconditioned select is just the source)"
                )
        elif op in self._BINARY:
            if len(sources) != 2:
                raise ValueError("a {} plan takes exactly two sources".format(op))
            if conditions:
                raise ValueError("conditions only apply to select plans")
        else:
            raise ValueError(
                "unknown view operator {!r}; expected one of {}".format(
                    op, sorted(self._BINARY) + ["select"]
                )
            )
        self.op = op
        self.sources: List[Source] = list(sources)
        self.conditions = dict(conditions) if conditions else None

    @property
    def delta_capable(self) -> bool:
        return self.op in self.DELTA_OPS

    def compute(
        self, sources: Sequence[HRelation], name: str, capture: Optional[Dict] = None
    ) -> HRelation:
        """Run the operator fully; ``capture`` receives the candidate
        pool when the operator is delta-capable."""
        if self.op == "select":
            return _algebra.select(
                sources[0], self.conditions, name=name, capture=capture
            )
        fn = self._BINARY[self.op]
        if self.op in ("join", "divide"):
            return fn(sources[0], sources[1], name=name)
        return fn(sources[0], sources[1], name=name, capture=capture)

    def truth_fn(self) -> Callable[..., bool]:
        """The pointwise boolean the operator combines truths with."""
        return {
            "select": lambda a, b: a and b,
            "union": lambda a, b: a or b,
            "intersection": lambda a, b: a and b,
            "difference": lambda a, b: a and not b,
        }[self.op]

    def evaluators(self, sources: Sequence[HRelation]) -> List[object]:
        """Fresh truth evaluators mirroring the full operator's inputs."""
        if self.op == "select":
            schema = sources[0].schema
            cone = schema.item_from_mapping(dict(self.conditions), default_top=True)
            return [
                _bulk.evaluator_for(sources[0]),
                _bulk.ConeEvaluator(schema.product, cone),
            ]
        return [_bulk.evaluator_for(source) for source in sources]

    def pointwise_truth(
        self, sources: Sequence[HRelation], item: Item
    ) -> Optional[bool]:
        """The view's truth at one item via per-item binding — no bulk
        evaluator build.  The delta path uses this when only a handful
        of candidates changed: rebuilding an evaluator snapshot is
        O(hierarchy + stored tuples) per refresh, which would dominate a
        single-tuple patch.  ``None`` signals a conflict at ``item``."""
        if self.op == "select":
            schema = sources[0].schema
            cone = schema.item_from_mapping(dict(self.conditions), default_top=True)
            truth, _ = _binding.truth_and_binders(sources[0], item)
            if truth is None:
                return None
            return truth and schema.product.subsumes(cone, item)
        truths: List[bool] = []
        for source in sources:
            truth, _ = _binding.truth_and_binders(source, item)
            if truth is None:
                return None
            truths.append(truth)
        return self.truth_fn()(*truths)

    def __repr__(self) -> str:
        return "ViewPlan({!r}, {} sources{})".format(
            self.op,
            len(self.sources),
            ", conditions={}".format(self.conditions) if self.conditions else "",
        )


class MaterializedView:
    """A lazily-refreshed cached computation over source relations.

    Parameters
    ----------
    name:
        The view's name (stamped onto the cached relation).
    compute:
        Legacy definition: a zero-argument callable producing an
        :class:`HRelation`.  Always fully recomputed when stale.
    sources:
        With ``compute``: every relation the callable reads.  The cache
        is invalidated when any source (or any of its hierarchies)
        mutates; listing too few sources silently serves stale data, so
        list them all.
    plan:
        Declarative definition: a :class:`ViewPlan`.  Mutually exclusive
        with ``compute`` and required for delta refresh.
    """

    #: Delta refresh gives up beyond this many distinct changed items
    #: per refresh (a batch that large is close to a rebuild anyway).
    delta_change_limit = 64

    #: Full-recompute trigger: the pool may grow to at most this many
    #: times its size at the last full refresh before being rebuilt.
    pool_growth_limit = 4

    #: Affected sets at or below this size are re-evaluated pointwise
    #: (per-item binding) instead of through a bulk-evaluator snapshot,
    #: whose build cost scales with the whole relation.
    delta_pointwise_limit = 16

    def __init__(
        self,
        name: str,
        compute: Optional[Callable[[], HRelation]] = None,
        sources: Sequence[Source] = (),
        plan: Optional[ViewPlan] = None,
    ) -> None:
        if (compute is None) == (plan is None):
            raise ValueError("provide exactly one of compute= or plan=")
        self.name = name
        self._compute = compute
        self._plan = plan
        self._source_spec: List[Source] = (
            list(plan.sources) if plan is not None else list(sources)
        )
        self._cached: Optional[ViewRelation] = None
        self._stamp: Optional[Tuple] = None
        #: Pre-consolidation candidate pool of the last full refresh
        #: (item -> combined truth); ``None`` when delta is unavailable.
        self._pool: Optional[Dict[Item, bool]] = None
        self._pool_order: Optional[List[Item]] = None
        self._full_size = 0
        #: Per-source ``relation.version`` cursor into the delta logs.
        self._cursors: Optional[List[int]] = None
        self.refresh_count = 0
        self.delta_refresh_count = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def _resolve_sources(self) -> List[HRelation]:
        return [s() if callable(s) else s for s in self._source_spec]

    def is_stale(self) -> bool:
        """Would :meth:`relation` refresh (delta or full) right now?"""
        return self._cached is None or self._stamp != _stamp(self._resolve_sources())

    def relation(self) -> HRelation:
        """The view's current contents as a read-only handle, refreshed
        only when stale — incrementally when the plan allows it."""
        sources = self._resolve_sources()
        stamp = _stamp(sources)
        if self._cached is not None and stamp == self._stamp:
            _obs.default_registry().counter("views.serve.fresh").inc()
            return self._cached
        with _obs.span("view.refresh", view=self.name) as sp:
            if self._try_delta(sources, stamp):
                _obs.default_registry().counter("views.refresh.delta").inc()
                sp.annotate(mode="delta", tuples=len(self._cached))
                return self._cached
            self._full_refresh(sources, stamp)
            _obs.default_registry().counter("views.refresh.full").inc()
            sp.annotate(mode="full", tuples=len(self._cached))
        return self._cached

    def invalidate(self) -> None:
        """Force the next access to fully recompute (e.g. after an
        effectful change the stamps cannot see)."""
        self._cached = None
        self._stamp = None
        self._pool = None
        self._pool_order = None
        self._cursors = None

    def truth_of(self, item) -> bool:
        return self.relation().truth_of(item)

    def extension(self):
        return self.relation().extension()

    def __len__(self) -> int:
        return len(self.relation())

    def __repr__(self) -> str:
        state = "stale" if self.is_stale() else "fresh"
        return "MaterializedView({!r}, {}, {} refreshes, {} delta)".format(
            self.name, state, self.refresh_count, self.delta_refresh_count
        )

    # ------------------------------------------------------------------
    # refresh machinery
    # ------------------------------------------------------------------

    def _full_refresh(self, sources: Sequence[HRelation], stamp: Tuple) -> None:
        capture: Optional[Dict] = (
            {} if (self._plan is not None and self._plan.delta_capable) else None
        )
        if self._plan is not None:
            computed = self._plan.compute(sources, self.name, capture=capture)
        else:
            computed = self._compute()
        self._cached = ViewRelation.adopt(computed, self.name)
        if capture and "candidates" in capture:
            self._pool = dict(zip(capture["candidates"], capture["truths"]))
            self._pool_order = list(capture["candidates"])
            self._full_size = len(self._pool_order)
        else:
            self._pool = None
            self._pool_order = None
            self._full_size = 0
        self._stamp = stamp
        self._cursors = [source.version for source in sources]
        self.refresh_count += 1

    def _try_delta(self, sources: Sequence[HRelation], stamp: Tuple) -> bool:
        """Attempt an in-place patch; False falls through to a full
        recompute (the fallback matrix in the module docstring)."""
        if (
            self._plan is None
            or not self._plan.delta_capable
            or self._cached is None
            or self._pool is None
            or self._stamp is None
            or self._cursors is None
            or len(self._stamp) != len(stamp)
        ):
            return False
        for old, new in zip(self._stamp, stamp):
            if old[1:] != new[1:]:  # hierarchy or strategy changed
                return False
        changed: List[Item] = []
        seen: Set[Item] = set()
        for source, cursor in zip(sources, self._cursors):
            if source.version < cursor:  # object replaced under the name
                return False
            delta = source.changes_since(cursor)
            if delta is None:  # history trimmed or wiped
                return False
            for item in delta:
                if item not in seen:
                    seen.add(item)
                    changed.append(item)
        if not changed or len(changed) > self.delta_change_limit:
            return False
        if len(self._pool_order) > max(32, self.pool_growth_limit * self._full_size):
            return False
        if not self._apply_delta(sources, changed):
            return False
        self._stamp = stamp
        self._cursors = [source.version for source in sources]
        self.delta_refresh_count += 1
        return True

    def _apply_delta(self, sources: Sequence[HRelation], changed: List[Item]) -> bool:
        schema = self._cached.schema
        product = schema.product
        pool = self._pool
        order = self._pool_order
        base_len = len(order)

        # 1. Close the changed items into the candidate pool: every new
        #    meet they (transitively) introduce lies inside a changed
        #    cone, so the pool stays a superset of the full candidate
        #    set.  The overlap mask prunes disjoint pairs before any
        #    meet probe.
        frontier = [item for item in changed if item not in pool]
        pending: Set[Item] = set(frontier)
        while frontier:
            for item in frontier:
                pool[item] = None
                order.append(item)
            # A bottom item's cone is itself, so its meet with anything
            # is itself (already pooled) or empty — only non-bottom
            # items can introduce new candidates and need the probe.
            probe = [item for item in frontier if not _is_bottom(schema, item)]
            next_frontier: List[Item] = []
            if probe:
                masks = _bulk.overlap_masks(schema, probe, order)
                for item, mask in zip(probe, masks):
                    while mask:
                        low = mask & -mask
                        mask ^= low
                        other = order[low.bit_length() - 1]
                        if other == item:
                            continue
                        for met in product.meet(item, other):
                            if met not in pool and met not in pending:
                                pending.add(met)
                                next_frontier.append(met)
            frontier = next_frontier

        # 2. The affected region: every candidate inside some changed
        #    item's descendant cone (all newly added ones qualify).  A
        #    bottom item covers exactly itself, so only non-bottom
        #    changes pay the posting sweep over the pool.
        generals = [item for item in changed if not _is_bottom(schema, item)]
        if generals:
            masks = _bulk.cover_masks(schema, generals, order)
            affected = [item for item, mask in zip(order, masks) if mask]
        else:
            affected = []
        covered = set(affected)
        for item in changed:
            if item not in covered and item in pool:
                covered.add(item)
                affected.append(item)
        if len(affected) > len(order) // 2 and len(order) > 32:
            self._rollback(base_len)
            return False  # touching most of the pool: rebuild instead

        # 3. Re-evaluate only the affected candidates — pointwise for
        #    small patches (an evaluator snapshot costs O(relation) to
        #    build), through fresh bulk evaluators for large ones.
        truths: List[bool] = []
        if len(affected) <= self.delta_pointwise_limit:
            for item in affected:
                truth = self._plan.pointwise_truth(sources, item)
                if truth is None:  # conflict: let the full path raise it
                    self._rollback(base_len)
                    return False
                truths.append(truth)
        else:
            evaluators = self._plan.evaluators(sources)
            fn = self._plan.truth_fn()
            for item in affected:
                row: List[bool] = []
                for evaluator in evaluators:
                    truth = evaluator.truth(item)
                    if truth is None:
                        self._rollback(base_len)
                        return False
                    row.append(truth)
                truths.append(fn(*row))

        # 4. Patch the cached relation in place.  The frozen handle is
        #    bypassed through the base class on purpose; re-asserting an
        #    unchanged truth is a no-op, so only moved items mutate.
        cached = self._cached
        for item, truth in zip(affected, truths):
            pool[item] = truth
            HRelation.assert_item(cached, item, truth=truth, replace=True)
        return True

    def _rollback(self, base_len: int) -> None:
        for item in self._pool_order[base_len:]:
            del self._pool[item]
        del self._pool_order[base_len:]


class ViewRegistry:
    """A named collection of views, e.g. one per database."""

    def __init__(self) -> None:
        self._views: dict[str, MaterializedView] = {}

    def define(
        self,
        name: str,
        compute: Optional[Callable[[], HRelation]] = None,
        sources: Sequence[Source] = (),
        plan: Optional[ViewPlan] = None,
    ) -> MaterializedView:
        if name in self._views:
            raise ValueError("view {!r} already defined".format(name))
        view = MaterializedView(name, compute=compute, sources=sources, plan=plan)
        self._views[name] = view
        return view

    def view(self, name: str) -> MaterializedView:
        return self._views[name]

    def drop(self, name: str) -> None:
        del self._views[name]

    def names(self) -> List[str]:
        return sorted(self._views)

    def __contains__(self, name: object) -> bool:
        return name in self._views

    def __len__(self) -> int:
        return len(self._views)
