"""Materialized views over hierarchical relations.

A view is a named operator result that callers can query like a stored
relation; because every layer of this library is versioned (relations
bump a counter per mutation, hierarchies too), the view can tell
precisely when its cache is stale and recompute lazily.

This rounds out the paper's positioning of the model as a back-end for
reasoning systems: the front end "issues less queries to the database"
precisely when the database can keep derived relations fresh itself.

Examples
--------
>>> # penguin_flyers = MaterializedView(
>>> #     "penguin_flyers",
>>> #     lambda: select(flies, {"creature": "penguin"}),
>>> #     sources=[flies])
>>> # penguin_flyers.relation()   # computed once ...
>>> # flies.assert_item(("penguin",), truth=True, replace=True)
>>> # penguin_flyers.relation()   # ... recomputed only now
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.relation import HRelation


def _stamp(sources: Sequence[HRelation]) -> Tuple:
    return tuple(
        (relation.version, relation.schema.product.version) for relation in sources
    )


class MaterializedView:
    """A lazily-refreshed cached computation over source relations.

    Parameters
    ----------
    name:
        The view's name (stamped onto the cached relation).
    compute:
        A zero-argument callable producing an :class:`HRelation`.
    sources:
        Every relation the computation reads.  The cache is invalidated
        when any source (or any of its hierarchies) mutates; listing too
        few sources silently serves stale data, so list them all.
    """

    def __init__(
        self,
        name: str,
        compute: Callable[[], HRelation],
        sources: Sequence[HRelation],
    ) -> None:
        self.name = name
        self._compute = compute
        self._sources = list(sources)
        self._cached: Optional[HRelation] = None
        self._stamp: Optional[Tuple] = None
        self.refresh_count = 0

    def is_stale(self) -> bool:
        """Would :meth:`relation` recompute right now?"""
        return self._cached is None or self._stamp != _stamp(self._sources)

    def relation(self) -> HRelation:
        """The view's current contents, recomputing only when stale."""
        if self.is_stale():
            self._cached = self._compute()
            self._cached.name = self.name
            self._stamp = _stamp(self._sources)
            self.refresh_count += 1
        return self._cached

    def invalidate(self) -> None:
        """Force the next access to recompute (e.g. after an effectful
        change the stamps cannot see)."""
        self._cached = None
        self._stamp = None

    def truth_of(self, item) -> bool:
        return self.relation().truth_of(item)

    def extension(self):
        return self.relation().extension()

    def __len__(self) -> int:
        return len(self.relation())

    def __repr__(self) -> str:
        state = "stale" if self.is_stale() else "fresh"
        return "MaterializedView({!r}, {}, {} refreshes)".format(
            self.name, state, self.refresh_count
        )


class ViewRegistry:
    """A named collection of views, e.g. one per database."""

    def __init__(self) -> None:
        self._views: dict[str, MaterializedView] = {}

    def define(
        self,
        name: str,
        compute: Callable[[], HRelation],
        sources: Sequence[HRelation],
    ) -> MaterializedView:
        if name in self._views:
            raise ValueError("view {!r} already defined".format(name))
        view = MaterializedView(name, compute, sources)
        self._views[name] = view
        return view

    def view(self, name: str) -> MaterializedView:
        return self._views[name]

    def drop(self, name: str) -> None:
        del self._views[name]

    def names(self) -> List[str]:
        return sorted(self._views)
