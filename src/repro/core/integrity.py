"""Integrity enforcement (section 3.1).

Two constraints are specific to the hierarchical model:

* **type irredundancy** — no cycles in any hierarchy graph; enforced
  structurally by :class:`~repro.hierarchy.Hierarchy` at mutation time;
* the **ambiguity constraint** — every item of D* either carries its own
  tuple or has unanimous strongest binders; checked here.

The checker also hosts the classic, application-level constraints the
paper waves at ("restrictions on attribute values as a function of
other attribute values, restrictions on the number of tuples…"): they
are arbitrary predicates over the relation, registered by name.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.conflicts import Conflict, find_conflicts, resolution_tuples
from repro.core.htuple import HTuple
from repro.errors import InconsistentRelationError


def check_consistent(relation, exhaustive: bool = False) -> None:
    """Raise :class:`InconsistentRelationError` if any item conflicts."""
    conflicts = find_conflicts(relation, exhaustive=exhaustive)
    if conflicts:
        raise InconsistentRelationError(conflicts)


class IntegrityChecker:
    """Ambiguity-constraint checking plus user-registered predicates.

    Examples
    --------
    >>> checker = IntegrityChecker()
    >>> checker.add_constraint("nonempty", lambda r: len(r) > 0)
    >>> # checker.check(relation) raises on a conflict or a failed predicate
    """

    def __init__(self, exhaustive: bool = False) -> None:
        self.exhaustive = exhaustive
        self._constraints: Dict[str, Callable[[object], bool]] = {}

    def add_constraint(self, name: str, predicate: Callable[[object], bool]) -> None:
        """Register a named predicate that must hold for the relation."""
        self._constraints[name] = predicate

    def remove_constraint(self, name: str) -> None:
        self._constraints.pop(name, None)

    def constraint_names(self) -> List[str]:
        return sorted(self._constraints)

    def violations(self, relation) -> List[str]:
        """Names of registered constraints the relation fails."""
        return [
            name
            for name, predicate in sorted(self._constraints.items())
            if not predicate(relation)
        ]

    def conflicts(self, relation) -> List[Conflict]:
        return find_conflicts(relation, exhaustive=self.exhaustive)

    def check(self, relation) -> None:
        """Raise on any conflict or failed registered constraint."""
        conflicts = self.conflicts(relation)
        if conflicts:
            raise InconsistentRelationError(conflicts)
        failed = self.violations(relation)
        if failed:
            raise InconsistentRelationError(
                [
                    Conflict(item=("constraint", name), binders=())
                    for name in failed
                ]
            )

    def plan_resolution(
        self, relation, conflict: Conflict, truth: bool
    ) -> List[HTuple]:
        """Tuples that would resolve ``conflict`` in favour of ``truth``
        (see :func:`repro.core.conflicts.resolution_tuples`)."""
        return resolution_tuples(relation, conflict, truth)
