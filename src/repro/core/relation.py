"""Hierarchical relations: the central data structure of the model.

An :class:`HRelation` stores a set of signed tuples over a
:class:`~repro.core.schema.RelationSchema`.  Storage is *condensed*: a
tuple whose value is a class stands for every member of the class, and a
negated tuple cancels a more general positive one.  Section 3's key
invariant holds throughout: "every hierarchical relation must be
equivalent to a unique flat relation for a given item hierarchy", and
:meth:`extension` / :meth:`to_flat` realise that equivalence.

Upward compatibility (section 4): a relation whose every value is a leaf
behaves exactly like a standard relation — binding never fires because
no item is below any other.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core import binding as _binding
from repro.core.htuple import HTuple, format_item
from repro.core.preemption import OFF_PATH, PreemptionStrategy
from repro.core.schema import RelationSchema
from repro.errors import TupleError
from repro.hierarchy.graph import Hierarchy
from repro.hierarchy.product import Item


class HRelation:
    """A hierarchical relation: signed tuples over a schema.

    Parameters
    ----------
    schema:
        Either a :class:`RelationSchema` or a sequence of
        ``(attribute, Hierarchy)`` pairs.
    name:
        Optional label used by rendering and the engine catalog.
    strategy:
        The preemption strategy for truth evaluation; defaults to the
        paper's off-path semantics.

    Examples
    --------
    >>> from repro.hierarchy import hierarchy_from_dict
    >>> animal = hierarchy_from_dict("animal", {"bird": {"penguin": None}})
    >>> flies = HRelation([("creature", animal)], name="flies")
    >>> flies.assert_item(("bird",))
    >>> flies.assert_item(("penguin",), truth=False)
    >>> flies.truth_of(("penguin",))
    False
    """

    def __init__(
        self,
        schema: RelationSchema | Sequence[Tuple[str, Hierarchy]],
        name: str = "relation",
        strategy: PreemptionStrategy = OFF_PATH,
    ) -> None:
        if not isinstance(schema, RelationSchema):
            schema = RelationSchema(schema)
        self.schema = schema
        self.name = name
        self.strategy = strategy
        #: Insertion-ordered (dicts preserve it) item -> truth mapping;
        #: doubles as the insertion record, so retraction is O(1).
        self._tuples: Dict[Item, bool] = {}
        self._version = 0
        self._binder_cache: Dict[object, Tuple[HTuple, ...]] = {}
        self._binder_index = None
        self._bulk_eval = None
        #: Recent mutations as ``(version, item)`` pairs; ``item`` is the
        #: touched item.  Incremental consumers (materialized views, the
        #: engine query cache) replay it via :meth:`changes_since`.
        self._delta_log: List[Tuple[int, Item]] = []
        #: Versions at or below this floor have fallen off the delta log
        #: (capacity trim or an unscoped wipe); ``changes_since`` answers
        #: ``None`` for cursors that old, forcing a full recompute.
        self._delta_floor = 0

    #: Relations holding at least this many tuples answer subsumer
    #: lookups from a :class:`~repro.core.index.BinderIndex` instead of
    #: scanning every stored tuple.  Tune per workload; tests force
    #: either path by setting it on an instance.
    index_threshold = 32

    #: Delta-log capacity: beyond this many recorded mutations the oldest
    #: entries are dropped and the floor advances, so an idle consumer can
    #: never pin unbounded history.
    delta_log_limit = 256

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def assert_item(
        self, item: Sequence[str], truth: bool = True, replace: bool = False
    ) -> None:
        """Add a signed tuple.

        Re-asserting an item with the same truth value is a no-op
        (relations are sets); re-asserting with the *opposite* truth
        value raises :class:`TupleError` unless ``replace=True``, because
        a relation mapping one item to both 0 and 1 is meaningless.
        """
        key = self.schema.check_item(item)
        delta = 1
        if key in self._tuples:
            if self._tuples[key] == truth:
                return
            if not replace:
                raise TupleError(
                    "item ({}) is already asserted with truth {}; "
                    "pass replace=True to flip it".format(
                        ", ".join(key), self._tuples[key]
                    )
                )
            delta = 0  # sign flip: the item set is unchanged
        self._tuples[key] = truth
        self._bump(key, delta)

    def assert_tuple(self, htuple: HTuple, replace: bool = False) -> None:
        """Add an :class:`HTuple` (see :meth:`assert_item`)."""
        self.assert_item(htuple.item, truth=htuple.truth, replace=replace)

    def assert_all(
        self, pairs: Iterable[Tuple[Sequence[str], bool]] | Iterable[HTuple]
    ) -> None:
        """Bulk-add ``(item, truth)`` pairs or :class:`HTuple` objects."""
        for entry in pairs:
            if isinstance(entry, HTuple):
                self.assert_tuple(entry)
            else:
                item, truth = entry
                self.assert_item(item, truth=truth)

    def load_tuples(
        self,
        pairs: Iterable[Tuple[Sequence[str], bool]],
        version: Optional[int] = None,
    ) -> None:
        """Trusted bulk load for snapshot recovery.

        Replaces the stored tuples wholesale without per-item schema
        checks (the pairs came out of a snapshot this schema wrote) and
        without per-item version bumps.  ``version`` restores the
        counter the snapshot recorded — it must match for memo keys
        (bulk evaluators, query-cache stamps) rebuilt from the same
        snapshot to line up — and the delta floor advances to it, so
        incremental consumers see "history unavailable" rather than a
        bogus empty delta.
        """
        self._tuples = {tuple(item): bool(truth) for item, truth in pairs}
        self._version = len(self._tuples) if version is None else version
        self._delta_log = []
        self._delta_floor = self._version
        self._binder_cache = {}
        self._binder_index = None
        self._bulk_eval = None

    def retract(self, item: Sequence[str]) -> None:
        """Remove the tuple asserted at ``item``; raises if absent."""
        key = self.schema.check_item(item)
        if key not in self._tuples:
            raise TupleError("no tuple asserted at ({})".format(", ".join(key)))
        del self._tuples[key]
        self._bump(key, -1)

    def discard(self, item: Sequence[str]) -> bool:
        """Remove the tuple at ``item`` if present; returns whether it was."""
        key = self.schema.check_item(item)
        if key not in self._tuples:
            return False
        del self._tuples[key]
        self._bump(key, -1)
        return True

    def clear(self) -> None:
        self._tuples.clear()
        self._bump()

    def _bump(self, changed: Item | None = None, delta: int = 0) -> None:
        """Advance the version after a mutation.

        ``changed`` is the touched item (``None`` for an unscoped wipe)
        and ``delta`` the stored-tuple count change (+1 assert, -1
        retract, 0 sign flip).  Cached binders survive unless the
        mutated item subsumes theirs — a tuple influences exactly the
        queries below it — so bulk loads no longer discard every cached
        binder on each assert; the binder index absorbs the same delta
        incrementally instead of being rebuilt from scratch.
        """
        self._version += 1
        if changed is None:
            self._binder_cache.clear()
            self._binder_index = None
            self._delta_log.clear()
            self._delta_floor = self._version
            return
        self._delta_log.append((self._version, changed))
        if len(self._delta_log) > self.delta_log_limit:
            trimmed, _ = self._delta_log.pop(0)
            self._delta_floor = trimmed
        if self._binder_cache:
            product = self.schema.product
            doomed = [
                key
                for key in self._binder_cache
                if product.subsumes(changed, key[1])
            ]
            for key in doomed:
                del self._binder_cache[key]
        index = self._binder_index
        if index is not None:
            if delta > 0:
                index.add(changed)
            elif delta < 0:
                index.remove(changed)
            index.version = self._version

    # ------------------------------------------------------------------
    # storage views
    # ------------------------------------------------------------------

    @property
    def asserted(self) -> Mapping[Item, bool]:
        """The raw item -> truth mapping (read-only by convention)."""
        return self._tuples

    @property
    def version(self) -> int:
        return self._version

    def changes_since(self, version: int) -> Optional[List[Item]]:
        """The items mutated after ``version`` (assert, retract, or sign
        flip), oldest first, or ``None`` when that history is no longer
        available — the cursor predates the delta-log floor or an
        unscoped ``clear`` intervened.  Consumers getting ``None`` must
        fall back to a full recompute.
        """
        if version < self._delta_floor:
            return None
        return [item for v, item in self._delta_log if v > version]

    def tuples(self) -> List[HTuple]:
        """All stored tuples, in insertion order."""
        return [HTuple(item, truth) for item, truth in self._tuples.items()]

    def items(self) -> List[Item]:
        return list(self._tuples)

    def truth_of_stored(self, item: Sequence[str]) -> Optional[bool]:
        """The stored sign at exactly ``item`` (no binding), else ``None``."""
        return self._tuples.get(self.schema.check_item(item))

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, item: object) -> bool:
        try:
            key = self.schema.check_item(item)  # type: ignore[arg-type]
        except Exception:
            return False
        return key in self._tuples

    def __iter__(self) -> Iterator[HTuple]:
        return iter(self.tuples())

    def copy(self, name: str | None = None) -> "HRelation":
        """An independent relation with the same tuples.

        The version counter and delta log carry over, so a copy staged by
        a transaction and later installed in place of the original reads
        as a *continuation* of its history: version stamps stay
        monotonic (query-cache keys cannot collide with the original's)
        and ``changes_since`` keeps working across the swap.
        """
        out = HRelation(self.schema, name=name or self.name, strategy=self.strategy)
        out._tuples = dict(self._tuples)
        out._version = self._version
        out._delta_log = list(self._delta_log)
        out._delta_floor = self._delta_floor
        return out

    def same_tuples_as(self, other: "HRelation") -> bool:
        """True iff both relations store exactly the same signed tuples
        (physical equality, not just the same flat extension)."""
        return self._tuples == other._tuples

    # ------------------------------------------------------------------
    # truth / semantics
    # ------------------------------------------------------------------

    def truth_of(self, item: Sequence[str]) -> bool:
        """Truth value of any item (class-level or atomic), by binding."""
        return _binding.truth_of(self, self.schema.check_item(item))

    def holds(self, *values: str) -> bool:
        """Sugar: ``r.holds("tweety")`` == ``r.truth_of(("tweety",))``."""
        return self.truth_of(tuple(values))

    def strongest_binders(self, item: Sequence[str]) -> List[HTuple]:
        return _binding.strongest_binders(self, self.schema.check_item(item))

    def subsumers_of(self, item: Sequence[str]) -> List[Item]:
        """Every asserted item subsuming ``item`` (itself included when
        asserted) — the applicability set binding starts from.  Served
        by the binder index above :attr:`index_threshold` tuples."""
        key = self.schema.check_item(item)
        if len(self._tuples) >= self.index_threshold:
            from repro.core.index import BinderIndex

            if self._binder_index is None or self._binder_index.version != self._version:
                self._binder_index = BinderIndex(self)
            return self._binder_index.subsumers_of(self.schema, key)
        product = self.schema.product
        return [other for other in self._tuples if product.subsumes(other, key)]

    def justify(self, item: Sequence[str]) -> "_binding.Justification":
        return _binding.justify(self, self.schema.check_item(item))

    def extension(self) -> Iterator[Item]:
        """The equivalent flat relation: every atomic item mapped to 1.

        Enumerates the atoms below the positive tuples (rather than all
        of D*) and filters through one :class:`~repro.core.bulk.
        BulkEvaluator`, so the cost scales with the positive cones, not
        the domain — and each atom costs a bitset lookup, not a binding
        derivation.
        """
        from repro.core import bulk as _bulk

        return _bulk.extension_atoms(self)

    def extension_size(self) -> int:
        return sum(1 for _ in self.extension())

    def is_consistent(self) -> bool:
        from repro.core import conflicts

        return conflicts.is_consistent(self)

    def conflicts(self) -> List["object"]:
        from repro.core import conflicts

        return conflicts.find_conflicts(self)

    # ------------------------------------------------------------------
    # operators (sugar around repro.core.{consolidate,explicate,algebra})
    # ------------------------------------------------------------------

    def consolidated(self) -> "HRelation":
        from repro.core.consolidate import consolidate

        return consolidate(self)

    def explicated(
        self, attributes: Sequence[str] | None = None, drop_negated: bool | None = None
    ) -> "HRelation":
        from repro.core.explicate import explicate

        return explicate(self, attributes=attributes, drop_negated=drop_negated)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def format_tuple(self, htuple: HTuple) -> str:
        flags = [
            h.is_leaf(v) for h, v in zip(self.schema.hierarchies, htuple.item)
        ]
        return "{} {}".format(htuple.sign, format_item(htuple.item, flags))

    def __repr__(self) -> str:
        return "HRelation({!r}, {} tuples, schema={})".format(
            self.name, len(self), self.schema
        )

    def __str__(self) -> str:
        from repro.render.table import render_relation

        return render_relation(self)
