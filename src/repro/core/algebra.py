"""Standard relational operators over hierarchical relations (section 3.4).

The paper fixes the semantics rather than the algorithms: "any
manipulations on hierarchical relations should have the same effect
whether performed on the hierarchical relations or on the equivalent
flat relations".  The algorithms here operate directly on the condensed
form — flattening only when the semantics itself is existential — via
one engine, the **pointwise combinator**:

    Given consistent relations R₁…Rₖ over one schema and a boolean
    function *fn* with fn(false,…,false) = false, emit the tuple
    ``(m, fn(truth₁(m), …, truthₖ(m)))`` for every item *m* in the
    *meet-closure* of the inputs' asserted items (plus any extra seed
    items).  The result's flat extension is the pointwise combination
    of the inputs' flat extensions.

    Why it works: let *m* be a minimal emitted item containing an item
    *y*, and let *t* be any minimal binder of *y* in Rᵢ.  Some maximal
    common descendant *q* of (m, t) lies above *y*; *q* is in the
    closure, and minimality of *m* forces q = m, hence m ⊆ t.  Then *t*
    is a minimal binder of *m* too (an interposer at *m* would interpose
    at *y*), so by Rᵢ's consistency truthᵢ(m) = truthᵢ(y).  Thus every
    strongest binder of *y* in the result carries
    fn(truth₁(y), …, truthₖ(y)); items below no candidate default to
    false, which fn's zero-preservation matches.  ∎

The operators then fall out:

* **union** = OR, **intersection** = AND, **difference** = AND-NOT;
* **selection** = AND with a one-tuple *cone* relation (the selection
  class, padded with hierarchy roots on the other attributes);
* **join** = AND of cylindric extensions over the merged schema;
* **projection** is existential, so it partially explicates the dropped
  attributes and ORs the per-dropped-atom slices.

Results may contain redundant tuples (the paper notes the same of its
own examples); every operator takes ``consolidate=`` (default ``True``)
since consolidation never changes the flat relation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core import bulk as _bulk
from repro.core.conflicts import Conflict
from repro.core.consolidate import consolidate as _consolidate
from repro.core.consolidate import redundancy_sweep as _redundancy_sweep
from repro.core.explicate import explicate as _explicate
from repro.core.relation import HRelation
from repro.core.schema import RelationSchema
from repro.errors import InconsistentRelationError, SchemaError
from repro.hierarchy.product import Item, ProductHierarchy
from repro.obs import default_registry
from repro.obs import span as _span
from repro.obs import trace as _trace


def _count(op: str) -> None:
    """Bump the operator's call counter in the process-global registry
    (core code has no database handle; see docs/OBSERVABILITY.md)."""
    default_registry().counter("algebra." + op + ".calls").inc()


def meet_closure(product: ProductHierarchy, items: Iterable[Item]) -> Set[Item]:
    """The smallest superset of ``items`` closed under pairwise meets
    (maximal common descendants).

    Delegates to :meth:`ProductHierarchy.meet_closure`: unary schemas
    run one bulk closed-value-set sweep (no item pairs at all); higher
    arities probe each unordered pair once against the factors'
    memoised meet tables, so no component meet is ever recomputed.
    """
    return product.meet_closure(items)


def _pointwise(
    schema: RelationSchema,
    strategy,
    evaluators: Sequence[object],
    fn: Callable[..., bool],
    name: str,
    seeds: Iterable[Item],
    consolidate: bool,
    capture: Optional[Dict] = None,
    shortcircuit: Optional[str] = None,
    est_candidates: Optional[int] = None,
) -> HRelation:
    """The bitset-native pointwise engine every operator rides.

    Evaluates the meet-closure of ``seeds`` through the given truth
    evaluators (bulk evaluators, projection adaptors, or cone
    evaluators) in topological order.  With ``consolidate=True`` on a
    normal-form product, consolidation is *fused* into the emission
    sweep: a candidate whose truth matches all of its minimal
    already-emitted subsumers (the immediate predecessors of the
    would-be subsumption graph) is simply never asserted, replacing the
    build-relation-then-consolidate round trip with one pass over the
    same posting masks.  Non-normal-form products emit everything and
    run the literal consolidation procedure (the fused/two-step choice
    rides the planner's shared cost model when the planner is on).

    ``shortcircuit`` (``"or"`` / ``"and"``, set by the planner for
    symmetric combining functions) stops probing a candidate's
    evaluators at the first truth that settles the function value —
    first *true* for OR, first *false* for AND.  The candidate set,
    every emitted truth and the emission order are exactly those of the
    exhaustive loop, so results stay bit-identical; only conflict
    *detection* narrows, to the probes actually made (the documented
    precondition — consistent inputs — is unaffected).

    ``est_candidates`` is the planner's pre-evaluation candidate
    estimate: recorded on the span next to the actual count (EXPLAIN
    ANALYZE renders the pair) and fed back into the estimate
    corrections.

    ``capture``, when a dict, receives the full pre-consolidation
    ``candidates`` / ``truths`` lists — the state the delta-refresh
    path of :mod:`repro.core.views` patches incrementally.
    """
    from repro import planner as _planner

    product = schema.product
    with _span("algebra.pointwise", inputs=len(evaluators)) as sp:
        candidates = product.topological_sort(meet_closure(product, seeds))
        sp.annotate(candidates=len(candidates))
        if est_candidates is not None:
            sp.annotate(est_candidates=est_candidates)
            _planner.observe_estimate("pointwise", est_candidates, len(candidates))
        fused = (
            consolidate
            and _planner.consolidation_mode(
                product.needs_elimination_binding(), len(candidates)
            )
            == "fused"
        )
        sp.annotate(fused=fused)
        truths: List[bool] = []
        if shortcircuit == "or":
            for item in candidates:
                value = False
                for evaluator in evaluators:
                    truth = evaluator.truth(item)
                    if truth is None:
                        raise InconsistentRelationError(
                            [Conflict(item=item, binders=())]
                        )
                    if truth:
                        value = True
                        break
                truths.append(value)
        elif shortcircuit == "and":
            for item in candidates:
                value = True
                for evaluator in evaluators:
                    truth = evaluator.truth(item)
                    if truth is None:
                        raise InconsistentRelationError(
                            [Conflict(item=item, binders=())]
                        )
                    if not truth:
                        value = False
                        break
                truths.append(value)
        else:
            for item in candidates:
                row: List[bool] = []
                for evaluator in evaluators:
                    truth = evaluator.truth(item)
                    if truth is None:
                        raise InconsistentRelationError(
                            [Conflict(item=item, binders=())]
                        )
                    row.append(truth)
                truths.append(fn(*row))
        if capture is not None:
            capture["candidates"] = candidates
            capture["truths"] = truths
        out = HRelation(schema, name=name, strategy=strategy)
        if fused:
            default_registry().counter("algebra.fused_sweeps").inc()
            flags = _redundancy_sweep(schema, candidates, truths)
            for item, truth, redundant in zip(candidates, truths, flags):
                if not redundant:
                    out.assert_item(item, truth=truth)
            sp.annotate(tuples_out=len(out))
            return out
        for item, truth in zip(candidates, truths):
            out.assert_item(item, truth=truth)
        if consolidate:
            out = _consolidate(out, name=name)
        sp.annotate(tuples_out=len(out))
        return out


def combine(
    relations: Sequence[HRelation],
    fn: Callable[..., bool],
    name: str = "combined",
    extra_items: Iterable[Item] = (),
    consolidate: bool = True,
    capture: Optional[Dict] = None,
    fn_token: Optional[str] = None,
) -> HRelation:
    """The pointwise combinator (see module docstring).

    All ``relations`` must share one schema and be consistent;
    ``fn`` must map all-false to false (checked).  Raises
    :class:`InconsistentRelationError` if evaluating a candidate hits a
    conflict in any input.

    ``fn_token`` optionally names ``fn`` in the picklable vocabulary of
    :data:`repro.parallel.worker.FN_TOKENS` (``"or"``, ``"and"``, ...);
    when given and the parallel layer is enabled, the evaluation may be
    cone-partitioned across worker processes — the result is identical
    either way.  Arbitrary ``fn`` callables always run serially.

    With the planner on, a symmetric ``fn_token`` (``or``/``and``/
    ``any``/``all``) additionally lets n-ary evaluation be *reordered*
    by estimated cone coverage and short-circuited per candidate (see
    :func:`repro.planner.plan_combine`); ``andnot`` and anonymous
    callables always evaluate left-to-right.  The result is identical
    either way — only the probe count per candidate changes.
    """
    if not relations:
        raise SchemaError("combine needs at least one relation")
    schema = relations[0].schema
    for other in relations[1:]:
        schema.require_same_as(other.schema, "combine")
    if fn(*([False] * len(relations))):
        raise SchemaError(
            "combine requires fn(false, ..., false) == false; items below "
            "no candidate default to false and fn must agree"
        )
    seeds: Set[Item] = set(extra_items)
    for relation in relations:
        seeds.update(relation.asserted)
    _count("combine")
    with _span(
        "algebra.combine",
        inputs=len(relations),
        tuples_in=sum(len(r) for r in relations),
    ) as sp:
        if fn_token is not None:
            from repro import parallel as _parallel

            sharded = _parallel.maybe_combine(
                relations, fn_token, name=name, extra_items=tuple(extra_items),
                consolidate=consolidate, capture=capture,
            )
            if sharded is not None:
                return sharded
        from repro import planner as _planner

        # One bulk evaluator per input: the candidate set is evaluated
        # set-at-a-time instead of re-deriving a binding per (item, input).
        evaluators = [_bulk.evaluator_for(relation) for relation in relations]
        shortcircuit = None
        combine_plan = _planner.plan_combine(relations, fn_token)
        if combine_plan is not None:
            evaluators = [evaluators[i] for i in combine_plan.order]
            shortcircuit = combine_plan.shortcircuit
            sp.annotate(planner_order="reordered" if combine_plan.reordered else "kept")
        est_candidates = None
        if _trace.enabled() and _planner.enabled():
            # Estimates are only priced out when someone is watching
            # (EXPLAIN ANALYZE, slow-query tracing): the untraced hot
            # path pays nothing for auditability it cannot render.
            est_candidates = _planner.estimate_candidates(relations)
        return _pointwise(
            schema, relations[0].strategy, evaluators, fn, name, seeds, consolidate,
            capture=capture, shortcircuit=shortcircuit, est_candidates=est_candidates,
        )


# ----------------------------------------------------------------------
# set operations (Fig. 10)
# ----------------------------------------------------------------------


def union(
    left: HRelation, right: HRelation, name: str | None = None,
    consolidate: bool = True, capture: Optional[Dict] = None,
) -> HRelation:
    """Flat semantics: an atom satisfies the union iff it satisfies
    either argument ("Jack and Jill between them love")."""
    _count("union")
    with _span("algebra.union", left=left.name, right=right.name):
        return combine(
            [left, right],
            lambda a, b: a or b,
            name=name or "{}_union_{}".format(left.name, right.name),
            consolidate=consolidate,
            capture=capture,
            fn_token="or",
        )


def intersection(
    left: HRelation, right: HRelation, name: str | None = None,
    consolidate: bool = True, capture: Optional[Dict] = None,
) -> HRelation:
    """Flat semantics: both arguments ("Jack and Jill both love")."""
    _count("intersection")
    with _span("algebra.intersection", left=left.name, right=right.name):
        return combine(
            [left, right],
            lambda a, b: a and b,
            name=name or "{}_intersect_{}".format(left.name, right.name),
            consolidate=consolidate,
            capture=capture,
            fn_token="and",
        )


def difference(
    left: HRelation, right: HRelation, name: str | None = None,
    consolidate: bool = True, capture: Optional[Dict] = None,
) -> HRelation:
    """Flat semantics: the left but not the right ("Jack loves but Jill
    does not")."""
    _count("difference")
    with _span("algebra.difference", left=left.name, right=right.name):
        return combine(
            [left, right],
            lambda a, b: a and not b,
            name=name or "{}_minus_{}".format(left.name, right.name),
            consolidate=consolidate,
            capture=capture,
            fn_token="andnot",
        )


# ----------------------------------------------------------------------
# selection (Figs. 7–9)
# ----------------------------------------------------------------------


def select(
    relation: HRelation,
    conditions: Mapping[str, str],
    name: str | None = None,
    consolidate: bool = True,
    capture: Optional[Dict] = None,
) -> HRelation:
    """Selection by class membership: keep the atoms whose value on each
    conditioned attribute lies inside the given class (or equals the
    given atom).

    ``select(respects, {"student": "obsequious_student"})`` is Fig. 7;
    conditioning on an instance, as in Fig. 8, is the same call because
    an instance is a singleton class.
    """
    if not conditions:
        return relation.copy(name=name or relation.name)
    schema = relation.schema
    cone_item = schema.item_from_mapping(dict(conditions), default_top=True)
    _count("select")
    with _span(
        "algebra.select", source=relation.name, tuples_in=len(relation)
    ):
        from repro import parallel as _parallel

        sharded = _parallel.maybe_select(
            relation, cone_item,
            name or "{}_where".format(relation.name),
            consolidate=consolidate, capture=capture,
        )
        if sharded is not None:
            return sharded
        # The selection cone is a one-tuple relation whose truth function is
        # plain subsumption — valid under every strategy — so it is evaluated
        # directly instead of being materialised and re-bound.
        evaluators = [
            _bulk.evaluator_for(relation),
            _bulk.ConeEvaluator(schema.product, cone_item),
        ]
        seeds: Set[Item] = set(relation.asserted)
        seeds.add(cone_item)
        return _pointwise(
            schema,
            relation.strategy,
            evaluators,
            lambda a, b: a and b,
            name or "{}_where".format(relation.name),
            seeds,
            consolidate,
            capture=capture,
        )


# ----------------------------------------------------------------------
# projection and join (Fig. 11)
# ----------------------------------------------------------------------


def project(
    relation: HRelation,
    attributes: Sequence[str],
    name: str | None = None,
    consolidate: bool = True,
) -> HRelation:
    """Projection onto ``attributes`` with flat (existential) semantics:
    a projected atom is in the result iff *some* extension of it over the
    dropped attributes is in the relation.

    Existential quantification is not pointwise, so the dropped
    attributes are partially explicated and the per-atom slices are
    ORed together; the kept attributes stay condensed throughout.
    """
    kept = list(attributes)
    if not kept:
        raise SchemaError("projection needs at least one attribute")
    schema = relation.schema
    kept_indices = [schema.index_of(a) for a in kept]
    dropped = [a for a in schema.attributes if a not in set(kept)]
    out_schema = schema.restrict(kept)
    out_name = name or "{}_project".format(relation.name)
    _count("project")
    with _span(
        "algebra.project", source=relation.name, tuples_in=len(relation)
    ) as sp:
        if not dropped:
            out = HRelation(out_schema, name=out_name, strategy=relation.strategy)
            for item, truth in relation.asserted.items():
                out.assert_item(tuple(item[i] for i in kept_indices), truth=truth)
            out = _consolidate(out, name=out_name) if consolidate else out
            sp.annotate(slices=0, tuples_out=len(out))
            return out

        partial = _explicate(relation, attributes=dropped, drop_negated=False)
        dropped_indices = [schema.index_of(a) for a in dropped]
        slices: Dict[Tuple[str, ...], HRelation] = {}
        for item, truth in partial.asserted.items():
            atom_key = tuple(item[i] for i in dropped_indices)
            kept_item = tuple(item[i] for i in kept_indices)
            piece = slices.get(atom_key)
            if piece is None:
                piece = HRelation(out_schema, name="slice", strategy=relation.strategy)
                slices[atom_key] = piece
            piece.assert_item(kept_item, truth=truth)
        pieces = [slices[key] for key in sorted(slices)]
        sp.annotate(slices=len(pieces))
        if not pieces:  # empty input: the projection is empty too
            return HRelation(out_schema, name=out_name, strategy=relation.strategy)
        return combine(
            pieces,
            lambda *truths: any(truths),
            name=out_name,
            consolidate=consolidate,
            fn_token="any",
        )


def join(
    left: HRelation, right: HRelation, name: str | None = None, consolidate: bool = True
) -> HRelation:
    """Natural join on the shared attribute names (which must be bound
    to the same hierarchy objects).

    Implemented as the pointwise AND of the two *cylindric extensions*
    over the merged schema.  When both evaluators are sweep-exact under
    the paper's default strategy, the extensions are never materialised:
    a projection adaptor maps each merged-schema candidate onto the
    input's own attribute positions (padding with a hierarchy root
    preserves the binding structure exactly, so projecting instead of
    padding answers the same query zero-copy).  Otherwise each input is
    padded with the hierarchy root (the whole domain) on the attributes
    it lacks, as before.
    """
    if left.strategy.name != right.strategy.name:
        raise SchemaError(
            "cannot join relations with different preemption strategies: "
            "{!r} uses {!r}, {!r} uses {!r}".format(
                left.name, left.strategy.name, right.name, right.strategy.name
            )
        )
    merged_schema = left.schema.join_schema(right.schema)[0]
    out_name = name or "{}_join_{}".format(left.name, right.name)
    _count("join")
    with _span(
        "algebra.join",
        left=left.name,
        right=right.name,
        tuples_in=len(left) + len(right),
    ) as sp:
        from repro import planner as _planner

        if left.strategy.name == "off-path":
            left_eval = _bulk.evaluator_for(left)
            right_eval = _bulk.evaluator_for(right)
            # Zero-copy is *sound* only when both evaluators are
            # sweep-exact; among the sound modes the planner's priced
            # comparison picks (with the planner off, the legacy fixed
            # gate always took zero-copy when available — the cost
            # model reproduces that choice, auditably).
            join_mode = _planner.choose_join_mode(
                len(left),
                len(right),
                left_eval.sweep_exact and right_eval.sweep_exact,
            )
            if join_mode == "zero_copy":
                default_registry().counter("algebra.join.zero_copy").inc()
                sp.annotate(zero_copy=True)
                from repro import parallel as _parallel

                sharded = _parallel.maybe_join(
                    left, right, merged_schema, out_name, consolidate=consolidate
                )
                if sharded is not None:
                    return sharded
                left_pos, left_seeds = _padded_seeds(merged_schema, left)
                right_pos, right_seeds = _padded_seeds(merged_schema, right)
                return _pointwise(
                    merged_schema,
                    left.strategy,
                    [
                        _bulk.ProjectedEvaluator(left_eval, left_pos),
                        _bulk.ProjectedEvaluator(right_eval, right_pos),
                    ],
                    lambda a, b: a and b,
                    out_name,
                    left_seeds | right_seeds,
                    consolidate,
                )

        sp.annotate(zero_copy=False)
        left_cyl = HRelation(merged_schema, name="cyl_left", strategy=left.strategy)
        for item, truth in left.asserted.items():
            padded = list(merged_schema.product.top)
            for value, attribute in zip(item, left.schema.attributes):
                padded[merged_schema.index_of(attribute)] = value
            left_cyl.assert_item(tuple(padded), truth=truth)

        right_cyl = HRelation(merged_schema, name="cyl_right", strategy=right.strategy)
        for item, truth in right.asserted.items():
            padded = list(merged_schema.product.top)
            for value, attribute in zip(item, right.schema.attributes):
                padded[merged_schema.index_of(attribute)] = value
            right_cyl.assert_item(tuple(padded), truth=truth)

        return combine(
            [left_cyl, right_cyl],
            lambda a, b: a and b,
            name=out_name,
            consolidate=consolidate,
            fn_token="and",
        )


def _padded_seeds(
    merged_schema: RelationSchema, relation: HRelation
) -> Tuple[List[int], Set[Item]]:
    """``relation``'s attribute positions within the merged schema, and
    its asserted items padded with roots up to that schema (the seeds its
    cylindric extension would contribute to the candidate set)."""
    top = merged_schema.product.top
    positions = [merged_schema.index_of(a) for a in relation.schema.attributes]
    seeds: Set[Item] = set()
    for item in relation.asserted:
        padded = list(top)
        for position, value in zip(positions, item):
            padded[position] = value
        seeds.add(tuple(padded))
    return positions, seeds


def divide(
    dividend: HRelation, divisor: HRelation, name: str | None = None,
    consolidate: bool = True,
) -> HRelation:
    """Relational division with flat semantics: the kept sub-items of
    ``dividend`` related to *every* atom of ``divisor``'s extension.

    Division is a universal quantifier, i.e. a conjunction over the
    divisor's atoms — which *is* pointwise: partially explicate the
    shared attributes, slice per divisor atom, and AND the slices with
    the combinator.  An empty divisor divides out to the plain
    projection, matching the textbook convention.
    """
    shared = list(divisor.schema.attributes)
    for attribute in shared:
        if dividend.schema.hierarchy_for(attribute) is not divisor.schema.hierarchy_for(
            attribute
        ):
            raise SchemaError(
                "division attribute {!r} is bound to different hierarchies".format(
                    attribute
                )
            )
    kept = [a for a in dividend.schema.attributes if a not in set(shared)]
    if not kept:
        raise SchemaError("division needs at least one surviving attribute")
    out_name = name or "{}_divide_{}".format(dividend.name, divisor.name)
    _count("divide")
    # The divisor's extension is streamed straight off its bulk
    # evaluator — the atoms are never sorted or collected into a list.
    # AND is symmetric and the candidate set is a union of the slices'
    # seeds, so enumeration order cannot affect the result.
    atoms = divisor.extension()
    first = next(atoms, None)
    if first is None:
        return project(dividend, kept, name=out_name, consolidate=consolidate)

    with _span(
        "algebra.divide",
        dividend=dividend.name,
        divisor=divisor.name,
        tuples_in=len(dividend),
    ) as sp:
        out_schema = dividend.schema.restrict(kept)
        kept_indices = [dividend.schema.index_of(a) for a in kept]
        shared_indices = [dividend.schema.index_of(a) for a in shared]
        partial = _explicate(dividend, attributes=shared, drop_negated=False)
        slices: Dict[Tuple[str, ...], HRelation] = {}
        for item, truth in partial.asserted.items():
            atom_key = tuple(item[i] for i in shared_indices)
            piece = slices.get(atom_key)
            if piece is None:
                piece = HRelation(out_schema, name="slice", strategy=dividend.strategy)
                slices[atom_key] = piece
            piece.assert_item(tuple(item[i] for i in kept_indices), truth=truth)
        empty = HRelation(out_schema, name="empty", strategy=dividend.strategy)
        pieces: List[HRelation] = []
        atom = first
        while atom is not None:
            pieces.append(slices.get(atom, empty))
            atom = next(atoms, None)
        sp.annotate(divisor_atoms=len(pieces))
        return combine(
            pieces,
            lambda *truths: all(truths),
            name=out_name,
            consolidate=consolidate,
            fn_token="all",
        )


def semijoin(
    left: HRelation, right: HRelation, name: str | None = None, consolidate: bool = True
) -> HRelation:
    """``left ⋉ right``: the left atoms with at least one join partner.

    Flat semantics: project the natural join back onto the left schema
    and intersect with the left relation — built from the primitives so
    it inherits their flat-equivalence guarantee.
    """
    out_name = name or "{}_semijoin_{}".format(left.name, right.name)
    _count("semijoin")
    with _span("algebra.semijoin", left=left.name, right=right.name):
        joined = join(left, right, consolidate=False)
        back = project(joined, list(left.schema.attributes), consolidate=False)
        return intersection(left, back, name=out_name, consolidate=consolidate)


def antijoin(
    left: HRelation, right: HRelation, name: str | None = None, consolidate: bool = True
) -> HRelation:
    """``left ▷ right``: the left atoms with *no* join partner."""
    out_name = name or "{}_antijoin_{}".format(left.name, right.name)
    _count("antijoin")
    with _span("algebra.antijoin", left=left.name, right=right.name):
        matched = semijoin(left, right, consolidate=False)
        return difference(left, matched, name=out_name, consolidate=consolidate)


def rename(
    relation: HRelation, mapping: Mapping[str, str], name: str | None = None
) -> HRelation:
    """A copy of ``relation`` with attributes renamed (values untouched)."""
    out_schema = relation.schema.renamed(dict(mapping))
    out = HRelation(out_schema, name=name or relation.name, strategy=relation.strategy)
    for item, truth in relation.asserted.items():
        out.assert_item(item, truth=truth)
    return out
