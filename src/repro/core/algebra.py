"""Standard relational operators over hierarchical relations (section 3.4).

The paper fixes the semantics rather than the algorithms: "any
manipulations on hierarchical relations should have the same effect
whether performed on the hierarchical relations or on the equivalent
flat relations".  The algorithms here operate directly on the condensed
form — flattening only when the semantics itself is existential — via
one engine, the **pointwise combinator**:

    Given consistent relations R₁…Rₖ over one schema and a boolean
    function *fn* with fn(false,…,false) = false, emit the tuple
    ``(m, fn(truth₁(m), …, truthₖ(m)))`` for every item *m* in the
    *meet-closure* of the inputs' asserted items (plus any extra seed
    items).  The result's flat extension is the pointwise combination
    of the inputs' flat extensions.

    Why it works: let *m* be a minimal emitted item containing an item
    *y*, and let *t* be any minimal binder of *y* in Rᵢ.  Some maximal
    common descendant *q* of (m, t) lies above *y*; *q* is in the
    closure, and minimality of *m* forces q = m, hence m ⊆ t.  Then *t*
    is a minimal binder of *m* too (an interposer at *m* would interpose
    at *y*), so by Rᵢ's consistency truthᵢ(m) = truthᵢ(y).  Thus every
    strongest binder of *y* in the result carries
    fn(truth₁(y), …, truthₖ(y)); items below no candidate default to
    false, which fn's zero-preservation matches.  ∎

The operators then fall out:

* **union** = OR, **intersection** = AND, **difference** = AND-NOT;
* **selection** = AND with a one-tuple *cone* relation (the selection
  class, padded with hierarchy roots on the other attributes);
* **join** = AND of cylindric extensions over the merged schema;
* **projection** is existential, so it partially explicates the dropped
  attributes and ORs the per-dropped-atom slices.

Results may contain redundant tuples (the paper notes the same of its
own examples); every operator takes ``consolidate=`` (default ``True``)
since consolidation never changes the flat relation.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.errors import InconsistentRelationError, SchemaError
from repro.hierarchy.product import Item, ProductHierarchy
from repro.core import bulk as _bulk
from repro.core.conflicts import Conflict
from repro.core.consolidate import consolidate as _consolidate
from repro.core.explicate import explicate as _explicate
from repro.core.relation import HRelation
from repro.core.schema import RelationSchema


def meet_closure(product: ProductHierarchy, items: Iterable[Item]) -> Set[Item]:
    """The smallest superset of ``items`` closed under pairwise meets
    (maximal common descendants).

    The worklist pairs each element only with the elements before it,
    so every unordered pair is probed exactly once — meets of meets no
    longer re-probe the pairs earlier rounds already checked.
    """
    pool: Set[Item] = set(items)
    order: List[Item] = list(pool)
    cursor = 0
    while cursor < len(order):
        new = order[cursor]
        for earlier in range(cursor):
            for meet in product.meet(new, order[earlier]):
                if meet not in pool:
                    pool.add(meet)
                    order.append(meet)
        cursor += 1
    return pool


def combine(
    relations: Sequence[HRelation],
    fn: Callable[..., bool],
    name: str = "combined",
    extra_items: Iterable[Item] = (),
    consolidate: bool = True,
) -> HRelation:
    """The pointwise combinator (see module docstring).

    All ``relations`` must share one schema and be consistent;
    ``fn`` must map all-false to false (checked).  Raises
    :class:`InconsistentRelationError` if evaluating a candidate hits a
    conflict in any input.
    """
    if not relations:
        raise SchemaError("combine needs at least one relation")
    schema = relations[0].schema
    for other in relations[1:]:
        schema.require_same_as(other.schema, "combine")
    if fn(*([False] * len(relations))):
        raise SchemaError(
            "combine requires fn(false, ..., false) == false; items below "
            "no candidate default to false and fn must agree"
        )
    product = schema.product
    seeds: Set[Item] = set(extra_items)
    for relation in relations:
        seeds.update(relation.asserted)
    candidates = sorted(meet_closure(product, seeds), key=product.topological_key)
    out = HRelation(schema, name=name, strategy=relations[0].strategy)
    # One bulk evaluator per input: the candidate set is evaluated
    # set-at-a-time instead of re-deriving a binding per (item, input).
    evaluators = [_bulk.evaluator_for(relation) for relation in relations]
    for item in candidates:
        truths: List[bool] = []
        for evaluator in evaluators:
            truth = evaluator.truth(item)
            if truth is None:
                raise InconsistentRelationError([Conflict(item=item, binders=())])
            truths.append(truth)
        out.assert_item(item, truth=fn(*truths))
    if consolidate:
        out = _consolidate(out, name=name)
    return out


# ----------------------------------------------------------------------
# set operations (Fig. 10)
# ----------------------------------------------------------------------


def union(
    left: HRelation, right: HRelation, name: str | None = None, consolidate: bool = True
) -> HRelation:
    """Flat semantics: an atom satisfies the union iff it satisfies
    either argument ("Jack and Jill between them love")."""
    return combine(
        [left, right],
        lambda a, b: a or b,
        name=name or "{}_union_{}".format(left.name, right.name),
        consolidate=consolidate,
    )


def intersection(
    left: HRelation, right: HRelation, name: str | None = None, consolidate: bool = True
) -> HRelation:
    """Flat semantics: both arguments ("Jack and Jill both love")."""
    return combine(
        [left, right],
        lambda a, b: a and b,
        name=name or "{}_intersect_{}".format(left.name, right.name),
        consolidate=consolidate,
    )


def difference(
    left: HRelation, right: HRelation, name: str | None = None, consolidate: bool = True
) -> HRelation:
    """Flat semantics: the left but not the right ("Jack loves but Jill
    does not")."""
    return combine(
        [left, right],
        lambda a, b: a and not b,
        name=name or "{}_minus_{}".format(left.name, right.name),
        consolidate=consolidate,
    )


# ----------------------------------------------------------------------
# selection (Figs. 7–9)
# ----------------------------------------------------------------------


def select(
    relation: HRelation,
    conditions: Mapping[str, str],
    name: str | None = None,
    consolidate: bool = True,
) -> HRelation:
    """Selection by class membership: keep the atoms whose value on each
    conditioned attribute lies inside the given class (or equals the
    given atom).

    ``select(respects, {"student": "obsequious_student"})`` is Fig. 7;
    conditioning on an instance, as in Fig. 8, is the same call because
    an instance is a singleton class.
    """
    if not conditions:
        return relation.copy(name=name or relation.name)
    cone_item = relation.schema.item_from_mapping(dict(conditions), default_top=True)
    cone = HRelation(relation.schema, name="cone", strategy=relation.strategy)
    cone.assert_item(cone_item, truth=True)
    return combine(
        [relation, cone],
        lambda a, b: a and b,
        name=name or "{}_where".format(relation.name),
        consolidate=consolidate,
    )


# ----------------------------------------------------------------------
# projection and join (Fig. 11)
# ----------------------------------------------------------------------


def project(
    relation: HRelation,
    attributes: Sequence[str],
    name: str | None = None,
    consolidate: bool = True,
) -> HRelation:
    """Projection onto ``attributes`` with flat (existential) semantics:
    a projected atom is in the result iff *some* extension of it over the
    dropped attributes is in the relation.

    Existential quantification is not pointwise, so the dropped
    attributes are partially explicated and the per-atom slices are
    ORed together; the kept attributes stay condensed throughout.
    """
    kept = list(attributes)
    if not kept:
        raise SchemaError("projection needs at least one attribute")
    schema = relation.schema
    kept_indices = [schema.index_of(a) for a in kept]
    dropped = [a for a in schema.attributes if a not in set(kept)]
    out_schema = schema.restrict(kept)
    out_name = name or "{}_project".format(relation.name)
    if not dropped:
        out = HRelation(out_schema, name=out_name, strategy=relation.strategy)
        for item, truth in relation.asserted.items():
            out.assert_item(tuple(item[i] for i in kept_indices), truth=truth)
        return _consolidate(out, name=out_name) if consolidate else out

    partial = _explicate(relation, attributes=dropped, drop_negated=False)
    dropped_indices = [schema.index_of(a) for a in dropped]
    slices: Dict[Tuple[str, ...], HRelation] = {}
    for item, truth in partial.asserted.items():
        atom_key = tuple(item[i] for i in dropped_indices)
        kept_item = tuple(item[i] for i in kept_indices)
        piece = slices.get(atom_key)
        if piece is None:
            piece = HRelation(out_schema, name="slice", strategy=relation.strategy)
            slices[atom_key] = piece
        piece.assert_item(kept_item, truth=truth)
    pieces = [slices[key] for key in sorted(slices)]
    if not pieces:  # empty input: the projection is empty too
        return HRelation(out_schema, name=out_name, strategy=relation.strategy)
    return combine(
        pieces,
        lambda *truths: any(truths),
        name=out_name,
        consolidate=consolidate,
    )


def join(
    left: HRelation, right: HRelation, name: str | None = None, consolidate: bool = True
) -> HRelation:
    """Natural join on the shared attribute names (which must be bound
    to the same hierarchy objects).

    Implemented as the pointwise AND of the two *cylindric extensions*
    over the merged schema: each relation's tuples are padded with the
    hierarchy root (the whole domain) on the attributes it lacks, which
    preserves its binding structure exactly.
    """
    merged_schema, shared = left.schema.join_schema(right.schema)
    out_name = name or "{}_join_{}".format(left.name, right.name)

    left_cyl = HRelation(merged_schema, name="cyl_left", strategy=left.strategy)
    for item, truth in left.asserted.items():
        padded = list(merged_schema.product.top)
        for value, attribute in zip(item, left.schema.attributes):
            padded[merged_schema.index_of(attribute)] = value
        left_cyl.assert_item(tuple(padded), truth=truth)

    right_cyl = HRelation(merged_schema, name="cyl_right", strategy=left.strategy)
    for item, truth in right.asserted.items():
        padded = list(merged_schema.product.top)
        for value, attribute in zip(item, right.schema.attributes):
            padded[merged_schema.index_of(attribute)] = value
        right_cyl.assert_item(tuple(padded), truth=truth)

    return combine(
        [left_cyl, right_cyl],
        lambda a, b: a and b,
        name=out_name,
        consolidate=consolidate,
    )


def divide(
    dividend: HRelation, divisor: HRelation, name: str | None = None,
    consolidate: bool = True,
) -> HRelation:
    """Relational division with flat semantics: the kept sub-items of
    ``dividend`` related to *every* atom of ``divisor``'s extension.

    Division is a universal quantifier, i.e. a conjunction over the
    divisor's atoms — which *is* pointwise: partially explicate the
    shared attributes, slice per divisor atom, and AND the slices with
    the combinator.  An empty divisor divides out to the plain
    projection, matching the textbook convention.
    """
    shared = list(divisor.schema.attributes)
    for attribute in shared:
        if dividend.schema.hierarchy_for(attribute) is not divisor.schema.hierarchy_for(
            attribute
        ):
            raise SchemaError(
                "division attribute {!r} is bound to different hierarchies".format(
                    attribute
                )
            )
    kept = [a for a in dividend.schema.attributes if a not in set(shared)]
    if not kept:
        raise SchemaError("division needs at least one surviving attribute")
    out_name = name or "{}_divide_{}".format(dividend.name, divisor.name)
    divisor_atoms = sorted(divisor.extension())
    if not divisor_atoms:
        return project(dividend, kept, name=out_name, consolidate=consolidate)

    out_schema = dividend.schema.restrict(kept)
    kept_indices = [dividend.schema.index_of(a) for a in kept]
    shared_indices = [dividend.schema.index_of(a) for a in shared]
    partial = _explicate(dividend, attributes=shared, drop_negated=False)
    slices: Dict[Tuple[str, ...], HRelation] = {}
    for item, truth in partial.asserted.items():
        atom_key = tuple(item[i] for i in shared_indices)
        piece = slices.get(atom_key)
        if piece is None:
            piece = HRelation(out_schema, name="slice", strategy=dividend.strategy)
            slices[atom_key] = piece
        piece.assert_item(tuple(item[i] for i in kept_indices), truth=truth)
    empty = HRelation(out_schema, name="empty", strategy=dividend.strategy)
    pieces = [slices.get(atom, empty) for atom in divisor_atoms]
    return combine(
        pieces,
        lambda *truths: all(truths),
        name=out_name,
        consolidate=consolidate,
    )


def semijoin(
    left: HRelation, right: HRelation, name: str | None = None, consolidate: bool = True
) -> HRelation:
    """``left ⋉ right``: the left atoms with at least one join partner.

    Flat semantics: project the natural join back onto the left schema
    and intersect with the left relation — built from the primitives so
    it inherits their flat-equivalence guarantee.
    """
    out_name = name or "{}_semijoin_{}".format(left.name, right.name)
    joined = join(left, right, consolidate=False)
    back = project(joined, list(left.schema.attributes), consolidate=False)
    return intersection(left, back, name=out_name, consolidate=consolidate)


def antijoin(
    left: HRelation, right: HRelation, name: str | None = None, consolidate: bool = True
) -> HRelation:
    """``left ▷ right``: the left atoms with *no* join partner."""
    out_name = name or "{}_antijoin_{}".format(left.name, right.name)
    matched = semijoin(left, right, consolidate=False)
    return difference(left, matched, name=out_name, consolidate=consolidate)


def rename(
    relation: HRelation, mapping: Mapping[str, str], name: str | None = None
) -> HRelation:
    """A copy of ``relation`` with attributes renamed (values untouched)."""
    out_schema = relation.schema.renamed(dict(mapping))
    out = HRelation(out_schema, name=name or relation.name, strategy=relation.strategy)
    for item, truth in relation.asserted.items():
        out.assert_item(item, truth=truth)
    return out
