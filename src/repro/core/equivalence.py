"""Extension equivalence and containment, decided on the condensed form.

Two hierarchical relations are *equivalent* when their unique flat
relations coincide — the notion behind every guarantee in section 3
("the same effect whether performed on the hierarchical relations or on
the equivalent flat relations").  Explication decides it but costs the
extension; the pointwise combinator decides it on the condensed form:

* ``R ≡ S``  iff  the pointwise XOR of R and S has an empty extension
  (XOR maps all-false to false, so the combinator applies);
* ``R ⊇ S``  iff  the pointwise ``S AND NOT R`` is empty.

The emptiness test never materialises the symmetric difference — it
stops at the first witness atom, which is also returned for debugging.
"""

from __future__ import annotations

from typing import Optional

from repro.core.algebra import combine
from repro.core.relation import HRelation
from repro.hierarchy.product import Item


def _first_atom(relation: HRelation) -> Optional[Item]:
    for atom in relation.extension():
        return atom
    return None


def difference_witness(left: HRelation, right: HRelation) -> Optional[Item]:
    """An atom on which the two relations disagree, or ``None`` if they
    are equivalent."""
    xor = combine(
        [left, right],
        lambda a, b: a != b,
        name="xor",
        consolidate=False,
    )
    return _first_atom(xor)


def equivalent(left: HRelation, right: HRelation) -> bool:
    """True iff the two relations have the same flat extension (their
    stored tuples may differ arbitrarily — consolidation invariance is
    the canonical example)."""
    return difference_witness(left, right) is None


def containment_witness(bigger: HRelation, smaller: HRelation) -> Optional[Item]:
    """An atom of ``smaller`` missing from ``bigger``, or ``None``."""
    leftover = combine(
        [smaller, bigger],
        lambda s, b: s and not b,
        name="leftover",
        consolidate=False,
    )
    return _first_atom(leftover)


def contains(bigger: HRelation, smaller: HRelation) -> bool:
    """True iff ``bigger``'s flat extension includes ``smaller``'s."""
    return containment_witness(bigger, smaller) is None
