"""The ``consolidate`` operator (section 3.3.1).

Consolidation removes *redundant* tuples — tuples carrying the same
truth value as all of their immediate predecessors in the relation's
subsumption graph — without changing the equivalent flat relation.  The
subsumption graph is rooted at the universal negated tuple, so a
parentless negated tuple is redundant too.

The nodes are examined in topologically sorted order; the paper (citing
its companion memorandum [15]) states this achieves the unique minimum
relation with no redundant tuples.  When a tuple is deleted, the
corresponding node is eliminated from the subsumption graph by the node
elimination procedure, so subsequent redundancy tests see the updated
graph — this is what lets both the ``(student, incoherent-teacher)``
tuple *and* the conflict-resolving ``(obsequious-student,
incoherent-teacher)`` tuple of Fig. 6 be removed in one pass.
"""

from __future__ import annotations

from typing import List, Set

from repro.hierarchy import algorithms
from repro.hierarchy.product import Item
from repro.core.htuple import UNIVERSAL
from repro.core import binding as _binding


def consolidate(relation, name: str | None = None):
    """Return a copy of ``relation`` with every redundant tuple removed.

    The result has exactly the same flat extension; it is the unique
    minimum representation under the relation's item hierarchy.
    """
    out = relation.copy(name=name or relation.name)
    for item in redundant_tuples(relation):
        out.discard(item)
    return out


def redundant_tuples(relation) -> List[Item]:
    """The items consolidation would remove, in removal order (useful
    for explaining a consolidation without performing it)."""
    graph = _binding.subsumption_graph(relation)
    order = algorithms.topological_order(graph)
    removed: List[Item] = []
    for node in order:
        if node is UNIVERSAL:
            continue
        truth = relation.asserted[node]
        preds = algorithms.immediate_predecessors(graph, node)
        pred_truths = {
            UNIVERSAL.truth if p is UNIVERSAL else relation.asserted[p]
            for p in preds
        }
        if pred_truths == {truth}:
            algorithms.eliminate_node(graph, node, keep_redundant=False)
            removed.append(node)
    return removed
