"""The ``consolidate`` operator (section 3.3.1).

Consolidation removes *redundant* tuples — tuples carrying the same
truth value as all of their immediate predecessors in the relation's
subsumption graph — without changing the equivalent flat relation.  The
subsumption graph is rooted at the universal negated tuple, so a
parentless negated tuple is redundant too.

The nodes are examined in topologically sorted order; the paper (citing
its companion memorandum [15]) states this achieves the unique minimum
relation with no redundant tuples.  When a tuple is deleted, the
corresponding node is eliminated from the subsumption graph by the node
elimination procedure, so subsequent redundancy tests see the updated
graph — this is what lets both the ``(student, incoherent-teacher)``
tuple *and* the conflict-resolving ``(obsequious-student,
incoherent-teacher)`` tuple of Fig. 6 be removed in one pass.

Implementation.  On normal-form products (no redundant or preference
edges — every hierarchy its own transitive reduction) the graph is the
Hasse diagram of the asserted items, and node elimination preserves
reachability without introducing parallel edges.  The immediate
predecessors of a node in the partially-consolidated graph are then
exactly the *minimal kept strict subsumers* of its item — so the whole
pass runs as one bulk subsumption sweep (:func:`redundancy_sweep`) over
posting bitsets: no graph is built and no node is eliminated.  Products
that need elimination binding fall back to the literal
graph-construction procedure.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core import binding as _binding
from repro.core import bulk as _bulk
from repro.core.htuple import UNIVERSAL
from repro.hierarchy import algorithms
from repro.hierarchy.product import Item


def consolidate(relation, name: str | None = None):
    """Return a copy of ``relation`` with every redundant tuple removed.

    The result has exactly the same flat extension; it is the unique
    minimum representation under the relation's item hierarchy.
    """
    out = relation.copy(name=name or relation.name)
    for item in redundant_tuples(relation):
        out.discard(item)
    return out


def redundant_tuples(relation) -> List[Item]:
    """The items consolidation would remove, in removal order (useful
    for explaining a consolidation without performing it)."""
    product = relation.schema.product
    if product.needs_elimination_binding():
        return _redundant_by_elimination(relation)
    items = product.topological_sort(relation.asserted)
    flags = redundancy_sweep(
        relation.schema, items, [relation.asserted[item] for item in items]
    )
    return [item for item, redundant in zip(items, flags) if redundant]


def redundancy_sweep(
    schema, items: Sequence[Item], truths: Sequence[bool]
) -> List[bool]:
    """One bulk subsumption sweep deciding redundancy for every item.

    ``items`` must be listed in a linear extension of the subsumption
    order (ancestors first) with their truth values; the result flags
    each item the topologically-ordered elimination pass would remove.
    An item is redundant iff its minimal *kept* strict subsumers — the
    immediate predecessors in the partially-consolidated subsumption
    graph — unanimously carry its truth value; with no kept subsumer
    the universal negated tuple is the predecessor.  Valid on
    normal-form products only (the caller gates on
    ``needs_elimination_binding``).
    """
    subsumers = _bulk.subsumer_masks(schema, items)
    kept = 0
    flags: List[bool] = []
    for i, truth in enumerate(truths):
        preds = subsumers[i] & kept
        if preds:
            minimal = _bulk.minimal_of_mask(preds, subsumers)
            same = True
            rest = minimal
            while rest:
                low = rest & -rest
                if truths[low.bit_length() - 1] != truth:
                    same = False
                    break
                rest ^= low
        else:
            same = truth is UNIVERSAL.truth
        flags.append(same)
        if not same:
            kept |= 1 << i
    return flags


def _redundant_by_elimination(relation) -> List[Item]:
    """The literal procedure: build the subsumption graph, walk it in
    topological order, eliminate each redundant node as it is found."""
    graph = _binding.subsumption_graph(relation)
    order = algorithms.topological_order(graph)
    removed: List[Item] = []
    for node in order:
        if node is UNIVERSAL:
            continue
        truth = relation.asserted[node]
        preds = algorithms.immediate_predecessors(graph, node)
        pred_truths = {
            UNIVERSAL.truth if p is UNIVERSAL else relation.asserted[p]
            for p in preds
        }
        if pred_truths == {truth}:
            algorithms.eliminate_node(graph, node, keep_redundant=False)
            removed.append(node)
    return removed
