"""Conflict detection and resolution sets (sections 2.1, 2.2, 3.1).

A *conflict* is an item whose strongest-binding tuples carry differing
truth values — the state the paper refuses to permit ("we treat such a
conflict as an inconsistent state of the database").  The *ambiguity
constraint* of section 3.1 demands that every item of D* either carries
its own tuple or has unanimous strongest binders.

Detection is *optimistic*, exactly as the paper prescribes: two classes
are assumed disjoint unless the hierarchy offers evidence of an
intersection — a common node (an instance, or a declared intersection
class).  The candidate items that need checking are the **maximal common
descendants** (meet sets) of opposite-sign asserted pairs:

    If any item conflicts under off-path preemption, then some maximal
    common descendant of two opposite-sign asserted items conflicts.

    Proof sketch: let Z be a conflicted item with minimal binders t⁺ and
    t⁻.  Pick a maximal common descendant Z' of (t⁺, t⁻) with Z ⊆ Z'.
    Any asserted k with t ⊃ k ⊇ Z' would satisfy t ⊃ k ⊇ Z and
    contradict t's minimality at Z, so both t⁺ and t⁻ are still minimal
    binders at Z'; a tuple asserted at Z' itself would equally
    contradict minimality (or make Z' = Z conflict-free).  Hence Z'
    conflicts.  ∎

For the appendix strategies the same candidates are checked (complete
for no-preemption by the identical argument on *applicable* sets;
for on-path the candidate set is a heuristic and ``exhaustive=True``
is available — the hypothesis suite cross-validates both against the
brute-force oracle on small universes).

On *unary normal-form* schemas :func:`find_conflicts` does not compute
meets at all: the bulk evaluator's posting masks directly enumerate
every node with tuples of both signs applicable (see
:meth:`~repro.core.bulk.BulkEvaluator.mixed_sign_items`), which is a
complete probe set under every strategy — a conflicted item's
strongest binders are always a sign-mixed subset of its applicable
set.  That probe may surface conflicted items *below* a meet candidate
as well; they are genuine conflicts, so callers relying on "candidates
⊆ exhaustive" are unaffected.  Redundant-edge hierarchies keep the
historical meet probe (whose coverage there is heuristic anyway).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Set, Tuple

from repro.core import bulk as _bulk
from repro.core.htuple import HTuple
from repro.hierarchy.product import Item


@dataclass(frozen=True)
class Conflict:
    """An item whose strongest binders disagree.

    Attributes
    ----------
    item:
        The conflicted item.
    binders:
        The strongest-binding tuples, mixed in truth value.
    """

    item: Item
    binders: Tuple[HTuple, ...]

    @property
    def positive(self) -> Tuple[HTuple, ...]:
        return tuple(b for b in self.binders if b.truth)

    @property
    def negative(self) -> Tuple[HTuple, ...]:
        return tuple(b for b in self.binders if not b.truth)

    def __str__(self) -> str:
        return "conflict at ({}) between {}".format(
            ", ".join(self.item), " and ".join(str(b) for b in self.binders)
        )


def conflict_candidates(relation) -> List[Item]:
    """The items worth probing: every maximal common descendant of an
    opposite-sign pair of asserted items (deduplicated, in a linear
    extension of the subsumption order)."""
    product = relation.schema.product
    positives = [item for item, truth in relation.asserted.items() if truth]
    negatives = [item for item, truth in relation.asserted.items() if not truth]
    seen: Set[Item] = set()
    if positives and negatives:
        # Optimistic-disjointness pruning: one overlap sweep per
        # attribute marks, for each positive, exactly the negatives
        # whose descendant cones can intersect it; only those pairs get
        # a meet probe.  A clear bit proves the meet set is empty, so
        # the candidate set is identical to the all-pairs scan.
        masks = _bulk.overlap_masks(relation.schema, positives, negatives)
        for pos, mask in zip(positives, masks):
            while mask:
                low = mask & -mask
                mask ^= low
                seen.update(product.meet(pos, negatives[low.bit_length() - 1]))
    return product.topological_sort(seen)


def find_conflicts(relation, exhaustive: bool = False) -> List[Conflict]:
    """All conflicts in ``relation``.

    ``exhaustive=True`` scans every item of D* — exponential in arity,
    intended for tests and tiny universes; the default probes only the
    meet candidates (complete for off-path preemption, see module doc).
    """
    product = relation.schema.product
    if not exhaustive:
        from repro import parallel as _parallel

        sharded = _parallel.maybe_conflicts(relation)
        if sharded is not None:
            return sharded
    evaluator = _bulk.evaluator_for(relation)
    if exhaustive:
        candidates: Iterator[Item] | List[Item] = product.all_items()
    elif relation.schema.arity == 1 and not product.needs_elimination_binding():
        # Unary normal-form schemas skip the pairwise meets entirely:
        # the sweep's posting masks name every node with both signs
        # applicable — a complete probe set under every strategy (it
        # contains each meet candidate, and more; everything reported
        # is still a real conflict, so soundness is untouched).  With
        # redundant or preference edges the probe stays the meet set,
        # keeping the historical (heuristic) coverage there.
        candidates = evaluator.mixed_sign_items()
    else:
        candidates = conflict_candidates(relation)
    out: List[Conflict] = []
    seen: Set[Item] = set()
    for item in candidates:
        if item in seen:
            continue
        seen.add(item)
        if evaluator.truth(item) is None:
            _, binders = evaluator.truth_and_binders(item)
            out.append(Conflict(item=item, binders=tuple(binders)))
    return out


def is_consistent(relation, exhaustive: bool = False) -> bool:
    """True iff the ambiguity constraint holds for every item."""
    return not find_conflicts(relation, exhaustive=exhaustive)


# ----------------------------------------------------------------------
# resolution sets (section 3.1)
# ----------------------------------------------------------------------


def complete_resolution_set(relation, a: Sequence[str], b: Sequence[str]) -> List[Item]:
    """The *complete conflict resolution set* for asserted items ``a``
    and ``b``: every item X with X ⊆ a and X ⊆ b.

    Unique for a given conflict on a given item hierarchy.  Note the
    size is the product of the per-attribute common-descendant counts.
    """
    a = relation.schema.check_item(a)
    b = relation.schema.check_item(b)
    per_attribute: List[List[str]] = []
    for h, va, vb in zip(relation.schema.hierarchies, a, b):
        common = sorted(
            h.descendants(va) & h.descendants(vb), key=h.topological_rank
        )
        if not common:
            return []
        per_attribute.append(common)
    return [tuple(combo) for combo in itertools.product(*per_attribute)]


def minimal_resolution_set(relation, a: Sequence[str], b: Sequence[str]) -> List[Item]:
    """The *minimal conflict resolution set*: the maximal elements of the
    complete set — derived componentwise as the product of per-attribute
    maximal common descendants ("by virtue of the transitivity of
    subsumption", section 3.1)."""
    product = relation.schema.product
    a = relation.schema.check_item(a)
    b = relation.schema.check_item(b)
    return sorted(product.meet(a, b), key=product.topological_key)


def resolution_tuples(relation, conflict: Conflict, truth: bool) -> List[HTuple]:
    """A set of tuples that, once asserted, resolves ``conflict`` in
    favour of ``truth``: one tuple per member of the minimal conflict
    resolution set of every opposite-sign binder pair.

    The paper notes fewer tuples may suffice (an item binding closer to
    several members at once); this planner returns the straightforward
    sound set, which the integrity checker verifies creates no *new*
    unresolved conflict.
    """
    items: Set[Item] = set()
    for pos in conflict.positive:
        for neg in conflict.negative:
            items.update(minimal_resolution_set(relation, pos.item, neg.item))
    product = relation.schema.product
    return [
        HTuple(item, truth)
        for item in product.topological_sort(items)
    ]
