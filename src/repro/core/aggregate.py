"""Aggregation over hierarchical relations.

Section 3.3.2 motivates explication with exactly this: the operator "is
useful when a count, average, or other statistical operation is to be
performed over the relation".  Statistics are only well defined on the
flat extension — a class-valued tuple would otherwise count once no
matter how many atoms it speaks for — so every aggregate here first
explicates (implicitly, via :meth:`HRelation.extension`) and then folds.

Values are strings in this model; numeric aggregates parse them and
raise :class:`~repro.errors.SchemaError` if any group member does not
parse, rather than silently skipping rows.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import SchemaError


def count(relation, conditions: Optional[Dict[str, str]] = None) -> int:
    """The number of atomic items in the (optionally selected) extension."""
    if conditions:
        from repro.core.algebra import select

        relation = select(relation, conditions)
    return relation.extension_size()


def count_by(relation, attribute: str) -> Dict[str, int]:
    """Extension size grouped by the atomic value of ``attribute``."""
    index = relation.schema.index_of(attribute)
    out: Dict[str, int] = {}
    for atom in relation.extension():
        key = atom[index]
        out[key] = out.get(key, 0) + 1
    return out


def group_by_class(relation, attribute: str, classes: Sequence[str]) -> Dict[str, int]:
    """Extension size grouped by membership in the given classes.

    Classes may overlap (multiple inheritance), in which case an atom
    counts once per class containing it — group-by over a taxonomy is
    inherently a cover, not a partition.
    """
    hierarchy = relation.schema.hierarchy_for(attribute)
    index = relation.schema.index_of(attribute)
    members = {klass: set(hierarchy.leaves_under(klass)) for klass in classes}
    out = {klass: 0 for klass in classes}
    for atom in relation.extension():
        for klass, leaves in members.items():
            if atom[index] in leaves:
                out[klass] += 1
    return out


def _numeric(value: str, attribute: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise SchemaError(
            "aggregate over {!r}: value {!r} is not numeric".format(attribute, value)
        ) from None


def _fold(
    relation,
    attribute: str,
    fold: Callable[[List[float]], float],
    group_by: Optional[str] = None,
):
    value_index = relation.schema.index_of(attribute)
    if group_by is None:
        values = [
            _numeric(atom[value_index], attribute) for atom in relation.extension()
        ]
        return fold(values) if values else None
    group_index = relation.schema.index_of(group_by)
    buckets: Dict[str, List[float]] = {}
    for atom in relation.extension():
        buckets.setdefault(atom[group_index], []).append(
            _numeric(atom[value_index], attribute)
        )
    return {key: fold(values) for key, values in sorted(buckets.items())}


def total(relation, attribute: str, group_by: Optional[str] = None):
    """SUM over the numeric values of ``attribute`` in the extension."""
    return _fold(relation, attribute, sum, group_by)


def average(relation, attribute: str, group_by: Optional[str] = None):
    """AVG over the numeric values of ``attribute`` in the extension."""
    return _fold(relation, attribute, lambda vs: sum(vs) / len(vs), group_by)


def minimum(relation, attribute: str, group_by: Optional[str] = None):
    return _fold(relation, attribute, min, group_by)


def maximum(relation, attribute: str, group_by: Optional[str] = None):
    return _fold(relation, attribute, max, group_by)
