"""The paper's primary contribution: the hierarchical relational model.

The public surface re-exported here is what the README documents:

* :class:`RelationSchema` — attribute names bound to hierarchy domains;
* :class:`HTuple` — an item plus a truth value (section 2.1);
* :class:`HRelation` — a hierarchical relation (sections 2.1–2.2);
* preemption strategies ``OFF_PATH`` / ``ON_PATH`` / ``NO_PREEMPTION``
  (appendix);
* the binding API: :func:`truth_of`, :func:`strongest_binders`,
  :func:`justify`, :func:`binding_graph`;
* the batch path: :class:`BulkEvaluator` / :func:`evaluator_for` and
  the amortised :func:`bulk_truth_of` / :func:`bulk_truths`;
* conflict machinery: :func:`find_conflicts`,
  :func:`complete_resolution_set`, :func:`minimal_resolution_set`;
* the two new operators: :func:`consolidate` and :func:`explicate`
  (section 3.3);
* the standard operators, redefined for hierarchical relations
  (section 3.4): :func:`select`, :func:`project`, :func:`join`,
  :func:`union`, :func:`intersection`, :func:`difference`,
  :func:`rename`.
"""

from repro.core import aggregate
from repro.core.algebra import (
    antijoin,
    difference,
    divide,
    intersection,
    join,
    project,
    rename,
    select,
    semijoin,
    union,
)
from repro.core.binding import (
    Justification,
    binding_graph,
    justify,
    strongest_binders,
    subsumption_graph,
    truth_of,
)
from repro.core.bulk import (
    BulkEvaluator,
    evaluator_for,
    truth_of as bulk_truth_of,
    truths as bulk_truths,
)
from repro.core.conflicts import (
    Conflict,
    complete_resolution_set,
    find_conflicts,
    is_consistent,
    minimal_resolution_set,
)
from repro.core.consolidate import consolidate
from repro.core.equivalence import (
    containment_witness,
    contains,
    difference_witness,
    equivalent,
)
from repro.core.explicate import explicate
from repro.core.htuple import UNIVERSAL, HTuple, format_item
from repro.core.index import BinderIndex
from repro.core.integrity import IntegrityChecker, check_consistent
from repro.core.preemption import (
    NO_PREEMPTION,
    OFF_PATH,
    ON_PATH,
    PreemptionStrategy,
)
from repro.core.provenance import AssertionRecord, ProvenanceTracker
from repro.core.relation import HRelation
from repro.core.schema import RelationSchema
from repro.core.views import MaterializedView, ViewPlan, ViewRegistry, ViewRelation
from repro.core.where import And, Condition, Member, Not, Or, member, select_where

__all__ = [
    "RelationSchema",
    "HTuple",
    "UNIVERSAL",
    "format_item",
    "HRelation",
    "OFF_PATH",
    "ON_PATH",
    "NO_PREEMPTION",
    "PreemptionStrategy",
    "Justification",
    "binding_graph",
    "justify",
    "strongest_binders",
    "subsumption_graph",
    "truth_of",
    "BulkEvaluator",
    "evaluator_for",
    "bulk_truth_of",
    "bulk_truths",
    "Conflict",
    "complete_resolution_set",
    "find_conflicts",
    "is_consistent",
    "minimal_resolution_set",
    "consolidate",
    "explicate",
    "select",
    "project",
    "join",
    "semijoin",
    "antijoin",
    "divide",
    "equivalent",
    "contains",
    "difference_witness",
    "containment_witness",
    "union",
    "intersection",
    "difference",
    "rename",
    "IntegrityChecker",
    "check_consistent",
    "Condition",
    "Member",
    "And",
    "Or",
    "Not",
    "member",
    "select_where",
    "aggregate",
    "BinderIndex",
    "MaterializedView",
    "ViewPlan",
    "ViewRegistry",
    "ViewRelation",
    "ProvenanceTracker",
    "AssertionRecord",
]
