"""Bulk truth evaluation: one subsumption sweep answering many queries.

Section 4 of the paper leaves efficiency open ("the model shows promise
of efficient implementation, though some further work is needed in this
direction").  The per-item machinery in :mod:`repro.core.binding`
re-derives an item's applicability set and minimality frontier on every
call, so bulk consumers — :meth:`HRelation.extension`,
:func:`algebra.combine`, :func:`conflicts.find_conflicts`, full
:func:`explicate` — paid O(n · binding) for n queries.  A
:class:`BulkEvaluator` builds the relation's binding structure **once**
and answers each query from bitset lookups:

* Every stored tuple gets one bit position.  Per attribute, the tuples'
  bits are seeded onto their value nodes and swept *down* the class
  graph in one pass (:meth:`Hierarchy.downward_union`), yielding at
  each node the bitset of stored tuples whose value there subsumes it.
* The applicability set of a query item is then the AND across
  attributes of those per-node bitsets — one dict lookup and one
  integer AND per attribute, instead of a subsumption test per stored
  tuple (or a posting intersection per query).
* Binding strength falls out of the same structure: the strict
  subsumers of stored tuple *t* among the stored tuples are just the
  applicability mask of *t*'s own item (memoised per tuple), so the
  minimal — strongest-binding — applicable tuples of any query are an
  OR/AND-NOT away.

Strategy coverage mirrors :mod:`repro.core.preemption`:

* **off-path** on normal-form hierarchies (the paper's default) and
  **no preemption** on any hierarchy are answered exactly from the
  sweep.
* Items whose applicable tuples are unanimous, or whose *minimal*
  applicable tuples already disagree, are strategy-independent
  (strongest binders always sit between the two sets), so the sweep
  also decides them for **on-path** and for off-path over
  redundant-edge hierarchies; only the remaining stratum falls back to
  per-item node elimination.
* Hierarchies with preference edges delegate every query to the
  per-item path (the binding order diverges from the applicability
  order there).

Evaluators are immutable snapshots keyed on ``(strategy, relation
version, hierarchy versions)``; :func:`evaluator_for` memoises the
current one on the relation, so interleaved reads share a single sweep
and any mutation transparently invalidates it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro import obs as _obs
from repro.core import binding as _binding
from repro.core.htuple import HTuple
from repro.errors import AmbiguityError
from repro.hierarchy.product import Item


def _iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class BulkEvaluator:
    """A read-only snapshot of one relation's binding structure.

    Build once (O(hierarchy + stored tuples) bitset work), then call
    :meth:`truth` / :meth:`truth_and_binders` any number of times.  The
    snapshot is only valid for the ``(relation, hierarchy)`` versions it
    was built against; use :func:`evaluator_for` to get a cached,
    auto-refreshed instance.
    """

    def __init__(self, relation, strategy=None, *, postings=None) -> None:
        chosen = strategy if strategy is not None else relation.strategy
        self.relation = relation
        self.strategy = chosen
        schema = relation.schema
        product = schema.product
        self._product = product
        self._asserted: Dict[Item, bool] = dict(relation.asserted)
        self._items: List[Item] = list(self._asserted)
        self.key = (chosen.name, relation.version, product.version)
        pos = neg = 0
        for i, item in enumerate(self._items):
            if self._asserted[item]:
                pos |= 1 << i
            else:
                neg |= 1 << i
        self._pos = pos
        self._neg = neg
        self._delegate_all = product.has_preference_edges()
        self._minimal_exact = (
            chosen.name == "off-path" and not product.needs_elimination_binding()
        )
        self._postings: List[Dict[str, int]] = []
        if not self._delegate_all:
            if postings is not None:
                # Precomputed tables (binary snapshot recovery): trusted
                # verbatim, so loading skips the subsumption sweep — the
                # whole point of persisting them.
                self._postings = [dict(table) for table in postings]
            else:
                for position, hierarchy in enumerate(schema.hierarchies):
                    seed: Dict[str, int] = {}
                    for i, item in enumerate(self._items):
                        value = item[position]
                        seed[value] = seed.get(value, 0) | (1 << i)
                    self._postings.append(hierarchy.downward_union(seed))
        # Strict asserted subsumers per stored tuple, filled lazily:
        # only queries that reach the minimality check pay for them.
        self._above: List[Optional[int]] = [None] * len(self._items)

    # ------------------------------------------------------------------
    # masks
    # ------------------------------------------------------------------

    @property
    def sweep_exact(self) -> bool:
        """True when *every* query is answered by the sweep itself —
        no per-item delegation stratum exists.  Holds for off-path over
        normal-form hierarchies (the paper's default) and for
        no-preemption over any preference-free hierarchy; these are the
        strategies the zero-copy algebra adaptors may wrap."""
        if self._delegate_all:
            return False
        if self.strategy.name == "none":
            return True
        return self._minimal_exact

    def applicable_mask(self, item: Item) -> int:
        """The bitset of stored tuples whose item subsumes ``item``."""
        postings = self._postings
        mask = postings[0].get(item[0], 0)
        for position in range(1, len(postings)):
            if not mask:
                return 0
            mask &= postings[position].get(item[position], 0)
        return mask

    def _above_mask(self, index: int) -> int:
        mask = self._above[index]
        if mask is None:
            mask = self.applicable_mask(self._items[index]) & ~(1 << index)
            self._above[index] = mask
        return mask

    def _minimal_mask(self, applicable: int) -> int:
        """The minimal (most specific) tuples of an applicability mask."""
        dominated = 0
        rest = applicable
        while rest:
            low = rest & -rest
            dominated |= self._above_mask(low.bit_length() - 1)
            rest ^= low
        return applicable & ~dominated

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def truth(self, item: Item) -> Optional[bool]:
        """The truth value of ``item`` (already schema-checked), or
        ``None`` when its strongest binders conflict.

        Decides as much as possible from the sweep: an exact stored hit,
        an empty or sign-unanimous applicable set, and a sign-mixed
        minimal frontier are strategy-independent; only the genuinely
        strategy-sensitive leftovers delegate to the per-item path.
        """
        sign = self._asserted.get(item)
        if sign is not None:
            return sign
        if self._delegate_all:
            return _binding.truth_and_binders(self.relation, item, self.strategy)[0]
        applicable = self.applicable_mask(item)
        if not applicable:
            return False
        if not applicable & self._neg:
            return True
        if not applicable & self._pos:
            return False
        if self.strategy.name == "none":
            return None
        minimal = self._minimal_mask(applicable)
        minimal_pos = minimal & self._pos
        if minimal_pos and minimal & self._neg:
            return None
        if self._minimal_exact:
            return bool(minimal_pos)
        return _binding.truth_and_binders(self.relation, item, self.strategy)[0]

    def truth_and_binders(self, item: Item) -> Tuple[Optional[bool], List[HTuple]]:
        """Like :func:`binding.truth_and_binders`, bit-identical binders
        included.  Strategies whose binder *sets* need node elimination
        delegate wholesale; consumers that only need truth values should
        call :meth:`truth` and fetch binders for the rare conflict."""
        sign = self._asserted.get(item)
        if sign is not None:
            return sign, [HTuple(item, sign)]
        if self._delegate_all:
            return _binding.truth_and_binders(self.relation, item, self.strategy)
        applicable = self.applicable_mask(item)
        if not applicable:
            return False, []
        if self.strategy.name == "none":
            binders = self._htuples(applicable, reverse=True)
        elif self._minimal_exact:
            binders = self._htuples(self._minimal_mask(applicable))
        else:
            return _binding.truth_and_binders(self.relation, item, self.strategy)
        truths = {b.truth for b in binders}
        return (binders[0].truth if len(truths) == 1 else None), binders

    def truths(self, items: Sequence[Item]) -> List[Optional[bool]]:
        """Truth values for many (schema-checked) items at once."""
        return [self.truth(item) for item in items]

    def mixed_sign_items(self) -> List[Item]:
        """Every domain item with tuples of *both* signs applicable, in
        a linear extension of the subsumption order.

        Any conflicted item's strongest binders are a sign-mixed subset
        of its applicable set — under every strategy — so this is a
        complete conflict-probe set, read straight off the posting
        masks with no meet computations.  Only available for unary
        schemas (higher arities would need the product enumerated) that
        were actually swept (no preference edges).
        """
        if self._delegate_all or len(self._postings) != 1:
            raise ValueError(
                "mixed-sign enumeration needs a unary, swept schema"
            )
        pos, neg = self._pos, self._neg
        out = [
            (node,)
            for node, mask in self._postings[0].items()
            if mask & pos and mask & neg
        ]
        return self._product.topological_sort(out)

    def _htuples(self, mask: int, reverse: bool = False) -> List[HTuple]:
        items = self._product.topological_sort(
            (self._items[i] for i in _iter_bits(mask)), reverse=reverse
        )
        return [HTuple(item, self._asserted[item]) for item in items]

    def __repr__(self) -> str:
        return "BulkEvaluator({!r}, {} tuples, {})".format(
            getattr(self.relation, "name", "?"), len(self._items), self.strategy
        )


class ProjectedEvaluator:
    """Schema-projection adaptor: answers truth queries posed over a
    *wider* schema by projecting each item onto the base relation's
    attribute positions before consulting its evaluator.

    This is the zero-copy cylindric extension: a relation padded with
    hierarchy roots on the attributes it lacks has exactly the base
    relation's binding structure (root components subsume everything
    and compare equal among stored tuples), so the padded relation
    never needs to be materialised.  Only valid when the base
    evaluator's answers are decided entirely by the sweep
    (:attr:`BulkEvaluator.sweep_exact`); delegation strata would
    otherwise re-derive bindings against the wrong (unpadded) schema.
    """

    def __init__(self, base: BulkEvaluator, positions: Sequence[int]) -> None:
        if not base.sweep_exact:
            raise ValueError(
                "projection adaptor requires a sweep-exact base evaluator"
            )
        self._base = base
        self._positions = tuple(positions)

    def truth(self, item: Item) -> Optional[bool]:
        positions = self._positions
        return self._base.truth(tuple(item[p] for p in positions))


class ConeEvaluator:
    """The truth function of a one-tuple relation ``{(cone, true)}``:
    an item is true iff the cone item subsumes it.  Strategy-free (a
    single positive tuple either applies or nothing does), so ``select``
    can evaluate its selection cone without building a relation."""

    def __init__(self, product, cone_item: Item) -> None:
        self._product = product
        self._cone = cone_item

    def truth(self, item: Item) -> bool:
        return self._product.subsumes(self._cone, item)


def subsumer_masks(schema, items: Sequence[Item]) -> List[int]:
    """Per item, the bitset of *other* ``items`` strictly subsuming it.

    One posting sweep per attribute (seed each item's bit on its value,
    :meth:`Hierarchy.downward_union` pushes it over the value's cone)
    replaces the pairwise ``subsumes`` scan: the strict subsumers of
    item *i* are the AND across attributes of the masks at its values,
    minus its own bit.  This is the substrate the bulk consolidation
    sweep and the vectorised subsumption graph read from.
    """
    postings: List[Dict[str, int]] = []
    for position, hierarchy in enumerate(schema.hierarchies):
        seed: Dict[str, int] = {}
        for i, item in enumerate(items):
            value = item[position]
            seed[value] = seed.get(value, 0) | (1 << i)
        postings.append(hierarchy.downward_union(seed))
    out: List[int] = []
    for i, item in enumerate(items):
        mask = postings[0].get(item[0], 0)
        for position in range(1, len(postings)):
            if not mask:
                break
            mask &= postings[position].get(item[position], 0)
        out.append(mask & ~(1 << i))
    return out


def cover_masks(schema, covers: Sequence[Item], items: Sequence[Item]) -> List[int]:
    """Per item, the bitset of ``covers`` whose item subsumes it.

    One posting sweep per attribute (seed each cover's bit on its value,
    :meth:`Hierarchy.downward_union` pushes it over the value's cone)
    answers every (cover, item) subsumption test at once.  The delta
    view-refresh path uses this as its changed-cone test: an item lies
    inside the union of the mutated items' descendant cones iff its
    mask is non-zero.
    """
    postings: List[Dict[str, int]] = []
    for position, hierarchy in enumerate(schema.hierarchies):
        seed: Dict[str, int] = {}
        for i, cover in enumerate(covers):
            value = cover[position]
            seed[value] = seed.get(value, 0) | (1 << i)
        postings.append(hierarchy.downward_union(seed))
    out: List[int] = []
    for item in items:
        mask = postings[0].get(item[0], 0)
        for position in range(1, len(postings)):
            if not mask:
                break
            mask &= postings[position].get(item[position], 0)
        out.append(mask)
    return out


def overlap_masks(schema, subjects: Sequence[Item], others: Sequence[Item]) -> List[int]:
    """Per subject, the bitset of ``others`` whose descendant cone can
    intersect the subject's — the AND across attributes of one
    :meth:`Hierarchy.overlap_union` sweep each.  Pairs with a zero bit
    are disjoint and need no meet probe (optimistic disjointness); this
    is the pruning mask the conflict scan and the meet-closure share.
    """
    masks: List[int] = []
    for position, hierarchy in enumerate(schema.hierarchies):
        seed: Dict[str, int] = {}
        for i, other in enumerate(others):
            value = other[position]
            seed[value] = seed.get(value, 0) | (1 << i)
        overlap = hierarchy.overlap_union(seed)
        if position == 0:
            masks = [overlap.get(subject[0], 0) for subject in subjects]
        else:
            for i, subject in enumerate(subjects):
                masks[i] &= overlap.get(subject[position], 0)
    return masks


def minimal_of_mask(mask: int, subsumers: Sequence[int]) -> int:
    """The minimal (most specific) members of ``mask`` given each
    member's strict-subsumer mask: drop everything some member sits
    strictly above."""
    dominated = 0
    rest = mask
    while rest:
        low = rest & -rest
        dominated |= subsumers[low.bit_length() - 1]
        rest ^= low
    return mask & ~dominated


# ----------------------------------------------------------------------
# shard snapshots (the parallel execution layer)
# ----------------------------------------------------------------------


def sign_masks(pairs: Sequence[Tuple[Item, bool]]) -> Tuple[int, int]:
    """The positive / negative sign bitsets of an ordered sequence of
    ``(item, truth)`` pairs — bit *i* belongs to the *i*-th pair.  This
    is the same layout :class:`BulkEvaluator` derives internally; the
    parallel layer serialises it into each :class:`~repro.parallel.
    snapshot.ShardSnapshot` so workers rebuild identical evaluators."""
    pos = neg = 0
    for i, (_, truth) in enumerate(pairs):
        if truth:
            pos |= 1 << i
        else:
            neg |= 1 << i
    return pos, neg


def mask_to_bytes(mask: int) -> bytes:
    """Serialise a posting / sign bitset for shipping across a process
    boundary (little-endian ``int.to_bytes``; zero-width masks become
    one zero byte so the round-trip stays total)."""
    return mask.to_bytes(max(1, (mask.bit_length() + 7) // 8), "little")


def mask_from_bytes(data: bytes) -> int:
    """Inverse of :func:`mask_to_bytes`."""
    return int.from_bytes(data, "little")


def merge_emitted(product, parts: Sequence[Sequence[Tuple[Item, bool]]]) -> List[Tuple[Item, bool]]:
    """Merge per-shard ``(item, truth)`` emissions back into the global
    emission order.  Ownership makes the parts disjoint, so the merge is
    a concatenation re-sorted by the full product's topological key —
    exactly the insertion order the serial pointwise sweep produces."""
    merged: List[Tuple[Item, bool]] = []
    for part in parts:
        merged.extend((tuple(item), truth) for item, truth in part)
    ranks = [h.topological_ranks() for h in product.factors]
    merged.sort(
        key=lambda pair: tuple(rank[v] for rank, v in zip(ranks, pair[0]))
    )
    return merged


# ----------------------------------------------------------------------
# module API
# ----------------------------------------------------------------------


def evaluator_for(relation, strategy=None) -> BulkEvaluator:
    """The relation's current evaluator, rebuilt only when the relation
    or a hierarchy it is defined over has changed since the last call."""
    chosen = strategy if strategy is not None else relation.strategy
    key = (chosen.name, relation.version, relation.schema.product.version)
    cached = getattr(relation, "_bulk_eval", None)
    if cached is not None and cached.key == key:
        _obs.default_registry().counter("bulk.evaluator.reuses").inc()
        return cached
    _obs.default_registry().counter("bulk.evaluator.builds").inc()
    with _obs.span(
        "bulk.build_evaluator",
        relation=relation.name,
        tuples=len(relation.asserted),
        strategy=chosen.name,
    ):
        evaluator = BulkEvaluator(relation, chosen)
    try:
        relation._bulk_eval = evaluator
    except AttributeError:
        pass
    return evaluator


def truth_of(relation, item: Sequence[str], strategy=None) -> bool:
    """Drop-in equivalent of :func:`binding.truth_of` that amortises the
    binding structure across calls; raises :class:`AmbiguityError` when
    the ambiguity constraint fails at ``item``."""
    key = relation.schema.check_item(item)
    evaluator = evaluator_for(relation, strategy)
    truth = evaluator.truth(key)
    if truth is None:
        _, binders = evaluator.truth_and_binders(key)
        raise AmbiguityError(key, [(b.item, b.truth) for b in binders])
    return truth


def truths(relation, items: Sequence[Sequence[str]], strategy=None) -> List[Optional[bool]]:
    """Truth values for many items in one sweep (``None`` marks a
    conflict instead of raising, so callers can batch-triage)."""
    evaluator = evaluator_for(relation, strategy)
    check = relation.schema.check_item
    return [evaluator.truth(check(item)) for item in items]


def extension_atoms(relation) -> Iterator[Item]:
    """The relation's flat extension, enumerated through one evaluator.

    Same contract as the historical per-item loop — atoms below the
    positive tuples, deduplicated, filtered by binding, conflicted atoms
    raising :class:`AmbiguityError` — at one bitset lookup per atom.

    With the parallel layer enabled and a decomposable workload, the
    per-atom truth evaluation is cone-partitioned across workers; the
    coordinator then replays the serial enumeration order over the
    returned atom set (membership only, no evaluation), so the stream is
    bit-identical to the serial one.  A conflicted atom raises eagerly
    rather than mid-stream.
    """
    from repro import parallel as _parallel

    atoms = _parallel.maybe_extension(relation)
    if atoms is not None:
        return _writer_order_atoms(relation, set(atoms))
    return _extension_atoms_serial(relation)


def _writer_order_atoms(relation, keep) -> Iterator[Item]:
    """Replay the serial enumeration order over a precomputed atom set."""
    product = relation.schema.product
    seen = set()
    for item, truth in relation.asserted.items():
        if not truth:
            continue
        for atom in product.leaves_under(item):
            if atom in seen:
                continue
            seen.add(atom)
            if atom in keep:
                yield atom


def _extension_atoms_serial(relation) -> Iterator[Item]:
    evaluator = evaluator_for(relation)
    product = relation.schema.product
    seen = set()
    for item, truth in relation.asserted.items():
        if not truth:
            continue
        for atom in product.leaves_under(item):
            if atom in seen:
                continue
            seen.add(atom)
            answer = evaluator.truth(atom)
            if answer is None:
                _, binders = evaluator.truth_and_binders(atom)
                raise AmbiguityError(atom, [(b.item, b.truth) for b in binders])
            if answer:
                yield atom
