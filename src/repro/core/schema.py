"""Relation schemas: attribute names bound to hierarchy domains.

In the standard relational model each attribute ranges over a flat
domain; here (section 2.2) each attribute ranges over a *hierarchy* of
sub-domains.  A :class:`RelationSchema` is the ordered binding of
attribute names to :class:`~repro.hierarchy.Hierarchy` objects, plus the
derived :class:`~repro.hierarchy.ProductHierarchy` every item-level
question is delegated to.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import SchemaError
from repro.hierarchy.graph import Hierarchy
from repro.hierarchy.product import Item, ProductHierarchy


class RelationSchema:
    """An ordered mapping of attribute names to hierarchy domains.

    Examples
    --------
    >>> animals = Hierarchy("animal")
    >>> schema = RelationSchema([("creature", animals)])
    >>> schema.attributes
    ('creature',)
    """

    def __init__(self, attributes: Sequence[Tuple[str, Hierarchy]]) -> None:
        if not attributes:
            raise SchemaError("a schema needs at least one attribute")
        names = [name for name, _ in attributes]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate attribute names in schema: {}".format(names))
        self.attributes: Tuple[str, ...] = tuple(names)
        self.hierarchies: Tuple[Hierarchy, ...] = tuple(h for _, h in attributes)
        self.product = ProductHierarchy(self.hierarchies)
        self._index: Dict[str, int] = {name: i for i, name in enumerate(names)}

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def index_of(self, attribute: str) -> int:
        try:
            return self._index[attribute]
        except KeyError:
            raise SchemaError(
                "unknown attribute {!r}; schema has {}".format(
                    attribute, list(self.attributes)
                )
            ) from None

    def hierarchy_for(self, attribute: str) -> Hierarchy:
        return self.hierarchies[self.index_of(attribute)]

    def check_item(self, item: Sequence[str]) -> Item:
        """Validate an item against this schema; returns it as a tuple."""
        return self.product.check_item(item)

    def item_from_mapping(self, values: Dict[str, str], default_top: bool = False) -> Item:
        """Build an item from an attribute->value mapping.

        With ``default_top=True`` missing attributes take the hierarchy
        root (the whole domain) — handy for selection cones.
        """
        out: List[str] = []
        for name, hierarchy in zip(self.attributes, self.hierarchies):
            if name in values:
                out.append(values[name])
            elif default_top:
                out.append(hierarchy.root)
            else:
                raise SchemaError("missing value for attribute {!r}".format(name))
        extra = set(values) - set(self.attributes)
        if extra:
            raise SchemaError("unknown attributes in item: {}".format(sorted(extra)))
        return self.check_item(out)

    def same_as(self, other: "RelationSchema") -> bool:
        """True iff the two schemas have identical attribute names bound
        to identical hierarchy objects (section 3.4's set operations
        require it)."""
        return (
            self.attributes == other.attributes
            and all(a is b for a, b in zip(self.hierarchies, other.hierarchies))
        )

    def require_same_as(self, other: "RelationSchema", operation: str) -> None:
        if not self.same_as(other):
            raise SchemaError(
                "{} requires identical schemas; got {} and {}".format(
                    operation, self, other
                )
            )

    def restrict(self, attributes: Sequence[str]) -> "RelationSchema":
        """The schema projected onto ``attributes`` (order as given)."""
        return RelationSchema([(a, self.hierarchy_for(a)) for a in attributes])

    def renamed(self, mapping: Dict[str, str]) -> "RelationSchema":
        """A copy with attributes renamed via ``mapping`` (partial ok)."""
        unknown = set(mapping) - set(self.attributes)
        if unknown:
            raise SchemaError("cannot rename unknown attributes {}".format(sorted(unknown)))
        return RelationSchema(
            [(mapping.get(name, name), h) for name, h in zip(self.attributes, self.hierarchies)]
        )

    def join_schema(self, other: "RelationSchema") -> Tuple["RelationSchema", List[str]]:
        """The natural-join schema: our attributes followed by the
        other's non-shared attributes.  Shared attribute names must be
        bound to the same hierarchy object.  Returns ``(schema,
        shared_names)``."""
        shared = [name for name in self.attributes if name in other._index]
        for name in shared:
            if self.hierarchy_for(name) is not other.hierarchy_for(name):
                raise SchemaError(
                    "shared attribute {!r} is bound to different hierarchies".format(name)
                )
        merged: List[Tuple[str, Hierarchy]] = list(zip(self.attributes, self.hierarchies))
        merged.extend(
            (name, h)
            for name, h in zip(other.attributes, other.hierarchies)
            if name not in self._index
        )
        return RelationSchema(merged), shared

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RelationSchema) and self.same_as(other)

    def __hash__(self) -> int:
        return hash((self.attributes, tuple(id(h) for h in self.hierarchies)))

    def __repr__(self) -> str:
        parts = ", ".join(
            "{}: {}".format(name, h.name)
            for name, h in zip(self.attributes, self.hierarchies)
        )
        return "RelationSchema({})".format(parts)
