"""Truth evaluation: subsumption graphs, tuple-binding graphs, justification.

This module turns a bag of signed tuples into answers:

* :func:`truth_of` — the truth value of any item, per section 2.1: "the
  truth value of an item is obtained as the truth value of the tuple
  that binds strongest to it"; mixed strongest binders raise
  :class:`~repro.errors.AmbiguityError`.
* :func:`subsumption_graph` — the relation's subsumption graph (the
  hierarchy with every tuple-less node eliminated), rooted at the
  universal negated tuple; this is the structure `consolidate` walks.
* :func:`binding_graph` — an item's tuple-binding graph (Fig. 1d).
* :func:`justify` — section 3.4's answer-justification feature (Fig. 9):
  which stored tuples were applicable to a query answer and which of
  them decided it.

Functions take any object with ``schema`` (a
:class:`~repro.core.schema.RelationSchema`), ``asserted`` (a mapping
from item to truth value) and ``strategy`` attributes — in practice a
:class:`~repro.core.relation.HRelation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.htuple import HTuple, UNIVERSAL
from repro.core.preemption import PreemptionStrategy
from repro.errors import AmbiguityError
from repro.hierarchy import algorithms
from repro.hierarchy.product import Item


def strongest_binders(
    relation, item: Item, strategy: PreemptionStrategy | None = None
) -> List[HTuple]:
    """The tuples binding strongest to ``item`` (possibly empty)."""
    item = relation.schema.check_item(item)
    chosen = strategy if strategy is not None else relation.strategy
    cache = getattr(relation, "_binder_cache", None)
    # Key on the hierarchy versions too: the relation cannot see a
    # mutation of a shared hierarchy (e.g. a new preference edge).
    key = (chosen.name, item, relation.schema.product.version)
    if cache is not None and key in cache:
        return list(cache[key])
    supplier = getattr(relation, "subsumers_of", None)
    relevant = supplier(item) if supplier is not None else None
    binders = chosen.strongest_binders(
        relation.schema.product, relation.asserted, item, relevant=relevant
    )
    if cache is not None:
        cache[key] = tuple(binders)
    return binders


def truth_and_binders(
    relation, item: Item, strategy: PreemptionStrategy | None = None
) -> Tuple[Optional[bool], List[HTuple]]:
    """``(truth, binders)`` without raising: ``truth`` is ``None`` when
    the strongest binders disagree (a conflict), ``False`` when nothing
    applies (the universal negated tuple wins)."""
    binders = strongest_binders(relation, item, strategy)
    if not binders:
        return False, binders
    truths = {b.truth for b in binders}
    if len(truths) == 1:
        return binders[0].truth, binders
    return None, binders


def truth_of(relation, item: Item, strategy: PreemptionStrategy | None = None) -> bool:
    """The truth value of ``item``; raises :class:`AmbiguityError` when
    the ambiguity constraint fails at it."""
    truth, binders = truth_and_binders(relation, item, strategy)
    if truth is None:
        raise AmbiguityError(item, [(b.item, b.truth) for b in binders])
    return truth


# ----------------------------------------------------------------------
# graphs
# ----------------------------------------------------------------------


def subsumption_graph(relation) -> Dict[object, Set[object]]:
    """The relation's subsumption graph as ``{node: successors}``.

    Nodes are the asserted items plus :data:`UNIVERSAL`, which feeds
    every node that would otherwise be parentless (section 3.3.1).  On
    transitively-reduced hierarchies the graph is the Hasse diagram of
    the asserted items under subsumption, which is exactly what the
    paper's node-elimination construction produces there; with redundant
    class edges present, the literal elimination procedure runs on the
    union of the asserted items' ancestor cones.
    """
    product = relation.schema.product
    items: List[Item] = sorted(relation.asserted, key=product.topological_key)
    if product.has_redundant_edges() or product.has_preference_edges():
        graph = _eliminated_graph(relation, items)
    else:
        graph = _hasse_graph(product, items)
    # One pass over the edges finds every node with a predecessor; the
    # rest are the roots the universal negated tuple feeds.
    with_predecessor: Set[object] = set()
    for succs in graph.values():
        with_predecessor.update(succs)
    graph[UNIVERSAL] = {node for node in graph if node not in with_predecessor}
    return graph


def _hasse_graph(product, items: List[Item], schema=None) -> Dict[object, Set[object]]:
    """Covering graph of ``items`` under subsumption, via one posting
    sweep per attribute (``bulk.subsumer_masks``) instead of a pairwise
    ``subsumes`` scan: ``i`` covers ``j`` iff ``i`` is minimal among
    ``j``'s strict subsumers."""
    from repro.core import bulk as _bulk

    if schema is None:
        schema = _SchemaView(product)
    subsumers = _bulk.subsumer_masks(schema, items)
    graph: Dict[object, Set[object]] = {item: set() for item in items}
    for j, item in enumerate(items):
        covers = _bulk.minimal_of_mask(subsumers[j], subsumers)
        while covers:
            low = covers & -covers
            graph[items[low.bit_length() - 1]].add(item)
            covers ^= low
    return graph


class _SchemaView:
    """The slice of the schema interface ``bulk.subsumer_masks`` reads
    (just the factor hierarchies), for callers holding only a product."""

    def __init__(self, product) -> None:
        self.hierarchies = product.factors


def _eliminated_graph(relation, items: List[Item]) -> Dict[object, Set[object]]:
    product = relation.schema.product
    merged: Dict[Item, Set[Item]] = {}
    for item in items:
        cone = product.cone_graph(item, binding=True)
        for node, succs in cone.items():
            merged.setdefault(node, set()).update(succs)
    keep = set(items)
    doomed = [node for node in merged if node not in keep]
    rank = {n: i for i, n in enumerate(algorithms.topological_order(merged))}
    for node in sorted(doomed, key=rank.__getitem__):
        algorithms.eliminate_node(merged, node, keep_redundant=False)
    return {node: set(succs) for node, succs in merged.items()}


def binding_graph(relation, item: Item) -> Dict[object, Set[object]]:
    """The tuple-binding graph for ``item`` (Fig. 1d).

    Nodes are the asserted items applicable to ``item`` plus the item
    itself; edges reflect binding strength under the relation's
    preemption strategy.  The item's immediate predecessors are its
    strongest binders.
    """
    product = relation.schema.product
    item = relation.schema.check_item(item)
    applicable = [
        t.item
        for t in relation.strategy.applicable(product, relation.asserted, item)
        if t.item != item
    ]
    graph = product.cone_graph(item, binding=True)
    keep = set(applicable) | {item}
    keep_redundant = relation.strategy.name == "on-path"
    doomed = [node for node in graph if node not in keep]
    rank = {n: i for i, n in enumerate(algorithms.topological_order(graph))}
    for node in sorted(doomed, key=rank.__getitem__):
        algorithms.eliminate_node(graph, node, keep_redundant=keep_redundant)
    if relation.strategy.name == "none":
        # No preemption: the transitive closure makes every applicable
        # tuple an immediate predecessor of the item.
        closure = algorithms.transitive_closure(graph)
        for node in applicable:
            if item in closure[node]:
                graph[node].add(item)
    return graph


# ----------------------------------------------------------------------
# justification
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Justification:
    """Why an item has the truth value it has (section 3.4, Fig. 9).

    Attributes
    ----------
    item:
        The item asked about.
    truth:
        Its truth value, or ``None`` if the strongest binders conflict.
    deciders:
        The strongest-binding tuples (empty means the universal negated
        tuple decided, i.e. nothing applies).
    applicable:
        Every stored tuple applicable to the item, most specific first —
        the rows Fig. 9b prints.
    graph:
        The tuple-binding graph, for rendering.
    """

    item: Item
    truth: Optional[bool]
    deciders: Tuple[HTuple, ...]
    applicable: Tuple[HTuple, ...]
    graph: Dict[object, Set[object]] = field(hash=False, compare=False, default_factory=dict)

    @property
    def decided_by_default(self) -> bool:
        """True when no stored tuple applies and the closed-world default
        (the universal negated tuple) supplied the answer."""
        return not self.deciders

    def __str__(self) -> str:
        verdict = {True: "true", False: "false", None: "CONFLICT"}[self.truth]
        deciders = ", ".join(str(t) for t in self.deciders) or str(UNIVERSAL)
        return "({}) is {} because of {}".format(", ".join(self.item), verdict, deciders)


def justify(relation, item: Item) -> Justification:
    """Explain the truth value of ``item``: deciders, applicable tuples,
    and the tuple-binding graph."""
    item = relation.schema.check_item(item)
    truth, deciders = truth_and_binders(relation, item)
    applicable = relation.strategy.applicable(
        relation.schema.product, relation.asserted, item
    )
    graph = binding_graph(relation, item)
    return Justification(
        item=item,
        truth=truth,
        deciders=tuple(deciders),
        applicable=tuple(applicable),
        graph=graph,
    )
