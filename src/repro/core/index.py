"""A binder index: sub-linear subsumer lookup for large relations.

Section 4: "The model shows promise of efficient implementation,
though some further work is needed in this direction."  The binding
machinery's hot loop is *find every asserted item that subsumes x*; the
naive implementation scans all stored tuples.  :class:`BinderIndex`
answers it from per-attribute postings instead:

* for each attribute position, a mapping ``node -> items asserted with
  that node in that position``;
* the subsumers of ``x`` are the intersection over attributes of the
  union of postings along ``x``'s ancestor chain — exact, because item
  subsumption is componentwise.

Cost: O(Σ_a |ancestors(x_a)|) posting unions plus one k-way set
intersection, versus O(|relation| · arity) subsumption checks for the
scan.  Maintenance is **incremental**: :class:`~repro.core.relation.
HRelation` feeds each assert/retract delta straight into the postings
(:meth:`BinderIndex.add` / :meth:`BinderIndex.remove`) and restamps
``version``, so a bulk load touches each posting once instead of
rebuilding the whole index per mutation; the full rebuild remains the
fallback for unscoped changes (``clear``) or an index created against
an older snapshot.

:class:`~repro.core.relation.HRelation` consults the index
automatically once it holds at least ``HRelation.index_threshold``
tuples; benchmarks/test_perf_index.py measures the crossover.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.hierarchy.product import Item


class BinderIndex:
    """Per-attribute postings over one relation snapshot."""

    def __init__(self, relation) -> None:
        self.version = relation.version
        self.arity = relation.schema.arity
        self._postings: List[Dict[str, Set[Item]]] = [
            {} for _ in range(self.arity)
        ]
        for item in relation.asserted:
            self.add(item)

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------

    def add(self, item: Item) -> None:
        """Enter ``item`` into every attribute posting (idempotent)."""
        for position, value in enumerate(item):
            self._postings[position].setdefault(value, set()).add(item)

    def remove(self, item: Item) -> None:
        """Drop ``item`` from every attribute posting (idempotent)."""
        for position, value in enumerate(item):
            bucket = self._postings[position].get(value)
            if bucket is not None:
                bucket.discard(item)
                if not bucket:
                    del self._postings[position][value]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def subsumers_of(self, schema, item: Item) -> List[Item]:
        """Every indexed item that subsumes ``item`` (including an exact
        match), unordered."""
        best: Set[Item] | None = None
        # Intersect the cheapest attribute first: fewer candidates to carry.
        per_attribute: List[Set[Item]] = []
        for position, value in enumerate(item):
            hierarchy = schema.hierarchies[position]
            hits: Set[Item] = set()
            for ancestor in hierarchy.ancestors(value):
                postings = self._postings[position].get(ancestor)
                if postings:
                    hits |= postings
            if not hits:
                return []
            per_attribute.append(hits)
        per_attribute.sort(key=len)
        best = per_attribute[0]
        for hits in per_attribute[1:]:
            best = best & hits
            if not best:
                return []
        return list(best)
