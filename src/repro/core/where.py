"""A condition language for selections: boolean combinations of
class-membership tests.

Section 3.4's examples only select by a single class; real queries want
"penguins that are not amazing flying penguins" or "royal or Indian
elephants".  Any boolean combination of membership tests is still
*pointwise* — each membership cone is a consistent one-tuple relation,
and the whole expression is evaluated per meet-closure candidate — so
the same combinator that powers the basic operators handles it, with
the same flat-equivalence guarantee:

    flatten(select_where(R, expr)) ==
        {x in flatten(R) : expr holds of x's attribute values}

Build conditions with :func:`member` and combine with ``&``, ``|``,
``~`` (or the spelled-out :class:`And` / :class:`Or` / :class:`Not`):

>>> # select_where(flies, member("creature", "penguin")
>>> #                     & ~member("creature", "amazing_flying_penguin"))
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import SchemaError


class Condition:
    """Base class; supports ``&``, ``|``, ``~`` composition."""

    def members(self) -> List["Member"]:
        """Every membership leaf, left to right (with duplicates removed
        by the caller)."""
        raise NotImplementedError

    def evaluate(self, assignment: Dict["Member", bool]) -> bool:
        """The condition's value given each leaf's truth."""
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "Condition":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or(self, other)

    def __invert__(self) -> "Condition":
        return Not(self)


class Member(Condition):
    """``attribute``'s value lies inside ``node``'s cone (an instance is
    a singleton class, so equality tests are this too)."""

    def __init__(self, attribute: str, node: str) -> None:
        self.attribute = attribute
        self.node = node

    def members(self) -> List["Member"]:
        return [self]

    def evaluate(self, assignment: Dict["Member", bool]) -> bool:
        return assignment[self]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Member)
            and self.attribute == other.attribute
            and self.node == other.node
        )

    def __hash__(self) -> int:
        return hash((self.attribute, self.node))

    def __repr__(self) -> str:
        return "member({!r}, {!r})".format(self.attribute, self.node)


class And(Condition):
    def __init__(self, *parts: Condition) -> None:
        if not parts:
            raise SchemaError("And needs at least one part")
        self.parts = parts

    def members(self) -> List[Member]:
        return [m for part in self.parts for m in part.members()]

    def evaluate(self, assignment: Dict[Member, bool]) -> bool:
        return all(part.evaluate(assignment) for part in self.parts)

    def __repr__(self) -> str:
        return "(" + " & ".join(repr(p) for p in self.parts) + ")"


class Or(Condition):
    def __init__(self, *parts: Condition) -> None:
        if not parts:
            raise SchemaError("Or needs at least one part")
        self.parts = parts

    def members(self) -> List[Member]:
        return [m for part in self.parts for m in part.members()]

    def evaluate(self, assignment: Dict[Member, bool]) -> bool:
        return any(part.evaluate(assignment) for part in self.parts)

    def __repr__(self) -> str:
        return "(" + " | ".join(repr(p) for p in self.parts) + ")"


class Not(Condition):
    def __init__(self, part: Condition) -> None:
        self.part = part

    def members(self) -> List[Member]:
        return self.part.members()

    def evaluate(self, assignment: Dict[Member, bool]) -> bool:
        return not self.part.evaluate(assignment)

    def __repr__(self) -> str:
        return "~{!r}".format(self.part)


def member(attribute: str, node: str) -> Member:
    """The basic membership test (see :class:`Member`)."""
    return Member(attribute, node)


def select_where(relation, condition: Condition, name: str | None = None,
                 consolidate: bool = True):
    """Selection by an arbitrary boolean membership condition.

    The relation's own truth is ANDed with the condition, so the result
    is always a sub-relation of the input (zero-preservation holds
    whatever the condition, including pure negations).
    """
    from repro.core.algebra import combine
    from repro.core.relation import HRelation

    leaves: List[Member] = []
    for leaf in condition.members():
        if leaf not in leaves:
            leaves.append(leaf)
    cones = []
    for leaf in leaves:
        cone_item = relation.schema.item_from_mapping(
            {leaf.attribute: leaf.node}, default_top=True
        )
        cone = HRelation(relation.schema, name="cone", strategy=relation.strategy)
        cone.assert_item(cone_item, truth=True)
        cones.append(cone)

    def fn(relation_truth: bool, *cone_truths: bool) -> bool:
        assignment = dict(zip(leaves, cone_truths))
        return relation_truth and condition.evaluate(assignment)

    return combine(
        [relation, *cones],
        fn,
        name=name or "{}_where".format(relation.name),
        consolidate=consolidate,
    )
