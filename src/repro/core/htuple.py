"""Tuples of the hierarchical model: an item plus a truth value.

Section 2.1: "Every tuple is an item with an associated truth value.
The truth value of a tuple is a Boolean variable that is true for a
positive (normal) tuple and false for a negated tuple."

The module also defines :data:`UNIVERSAL`, the *universal negated tuple*
of section 3.3.1 — the virtual root of every subsumption graph, standing
for the closed-world default that unmentioned elements of D* are mapped
to zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

Item = Tuple[str, ...]


@dataclass(frozen=True, order=True)
class HTuple:
    """An immutable tuple of a hierarchical relation.

    Attributes
    ----------
    item:
        One hierarchy node per attribute.  A non-leaf node reads as the
        universally quantified "∀ class" of the paper; a leaf is an
        ordinary atomic value, so a purely-leaf tuple is exactly a
        standard relational tuple (upward compatibility).
    truth:
        ``True`` for a positive tuple, ``False`` for a negated tuple
        ("for every element of the item, the relation does not hold").
    """

    item: Item
    truth: bool = True

    def negated(self) -> "HTuple":
        """The same item with the opposite truth value."""
        return HTuple(self.item, not self.truth)

    @property
    def sign(self) -> str:
        return "+" if self.truth else "-"

    def __str__(self) -> str:
        return "{}({})".format(self.sign, ", ".join(self.item))


class _UniversalTuple:
    """The universal negated tuple over D* (section 3.3.1).

    It never belongs to a relation; it appears only as the virtual root
    of subsumption and tuple-binding graphs, feeding every parentless
    node, so that a parentless *negated* tuple is recognised as
    redundant.  Its truth value is ``False`` by definition.
    """

    truth = False
    item: Tuple[str, ...] = ()
    sign = "-"

    _instance: "_UniversalTuple | None" = None

    def __new__(cls) -> "_UniversalTuple":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNIVERSAL"

    def __str__(self) -> str:
        return "-(D*)"


UNIVERSAL = _UniversalTuple()


def format_item(item: Iterable[str], leaf_flags: Iterable[bool] | None = None) -> str:
    """Render an item the way the paper's figures do: class-valued
    attributes get the universal-quantifier prefix (``∀bird``), atomic
    values appear bare (``tweety``).

    ``leaf_flags`` says, per attribute, whether the value is a leaf; when
    omitted every value is shown bare.
    """
    values = list(item)
    if leaf_flags is None:
        flags = [True] * len(values)
    else:
        flags = list(leaf_flags)
    return ", ".join(
        value if is_leaf else "∀{}".format(value)
        for value, is_leaf in zip(values, flags)
    )
