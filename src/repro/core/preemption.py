"""Preemption semantics: which applicable tuple binds strongest.

The body of the paper uses *off-path preemption*: a tuple ``i`` binds
more strongly to an item than a tuple ``j`` iff there is a path from
``j`` to ``i`` in the (item) hierarchy — i.e. ``i`` is the more specific
assertion — in addition to both being applicable.  The appendix defines
two alternatives, *on-path preemption* ("every path from ``j`` to the
item must pass through ``i``") and *no preemption* (all applicable
tuples bind equally), and notes that arbitrary preference rules can be
grafted on via special hierarchy edges after which off-path semantics
apply.

All three are implemented as interchangeable :class:`PreemptionStrategy`
objects.  Per the appendix, "all the relational operations, both the
standard ones and the new ones, stay the same.  The difference arises
only in the construction of … the tuple binding graph" — so the strategy
is a property of a relation, consulted by the binding machinery and by
nothing else.

Implementation notes
--------------------
* **Fast path (off-path).**  When every attribute hierarchy is
  transitively reduced — the normal form the appendix prescribes for
  off-path preemption — the strongest binders of an item are simply the
  *minimal* applicable asserted items in the binding order.  No graph is
  materialised.
* **Slow path.**  When a hierarchy carries redundant class edges (the
  appendix's "Pamela is a Penguin" link), off-path falls back to the
  paper's literal mechanism: build the induced product graph on the
  item's ancestor cone and run the node-elimination procedure on every
  non-asserted node; the item's immediate predecessors are the
  strongest binders.  On-path preemption always uses this mechanism,
  with redundant edges *kept* during elimination, exactly as the
  appendix prescribes.
* **Preference edges** participate in the binding order (they are merged
  into the binding graph / binding subsumption) but never in
  applicability: a tuple applies to an item only if its item
  set-subsumes it.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.core.htuple import HTuple
from repro.hierarchy import algorithms
from repro.hierarchy.product import Item, ProductHierarchy


def _relevant(
    product: ProductHierarchy,
    asserted: Mapping[Item, bool],
    item: Item,
    supplied: Sequence[Item] | None,
) -> List[Item]:
    """The asserted items strictly applicable to ``item``.

    ``supplied`` lets the caller hand over a precomputed subsumer list
    (e.g. from :class:`~repro.core.index.BinderIndex`) instead of the
    O(relation) scan.
    """
    if supplied is not None:
        return [other for other in supplied if other != item]
    return [
        other for other in asserted if other != item and product.subsumes(other, item)
    ]


class PreemptionStrategy:
    """Base class; subclasses implement :meth:`strongest_binders`."""

    name = "abstract"

    def strongest_binders(
        self,
        product: ProductHierarchy,
        asserted: Mapping[Item, bool],
        item: Item,
        relevant: Sequence[Item] | None = None,
    ) -> List[HTuple]:
        """The tuples that bind strongest to ``item``.

        An empty result means no asserted tuple applies: the universal
        negated tuple wins and the item's truth value defaults to
        ``False``.  A tuple asserted at the item itself always binds
        strongest, whatever the strategy.  ``relevant`` optionally
        supplies the item's asserted subsumers, already computed.
        """
        raise NotImplementedError

    def applicable(
        self,
        product: ProductHierarchy,
        asserted: Mapping[Item, bool],
        item: Item,
        relevant: Sequence[Item] | None = None,
    ) -> List[HTuple]:
        """Every asserted tuple whose item set-subsumes ``item``, in a
        deterministic most-specific-first order.  This is the node set of
        the item's tuple-binding graph."""
        hits = _relevant(product, asserted, item, relevant)
        if item in asserted:
            hits = hits + [item]
        hits.sort(key=product.topological_key, reverse=True)
        return [HTuple(other, asserted[other]) for other in hits]

    def __repr__(self) -> str:
        return "<{} preemption>".format(self.name)


class OffPathPreemption(PreemptionStrategy):
    """The paper's default: more specific assertions win (section 2.1)."""

    name = "off-path"

    def strongest_binders(
        self,
        product: ProductHierarchy,
        asserted: Mapping[Item, bool],
        item: Item,
        relevant: Sequence[Item] | None = None,
    ) -> List[HTuple]:
        if item in asserted:
            return [HTuple(item, asserted[item])]
        applicable = _relevant(product, asserted, item, relevant)
        if not applicable:
            return []
        if product.has_redundant_edges():
            return _eliminate_binders(
                product, asserted, item, applicable, keep_redundant=False
            )
        pool = set(applicable)
        minimal = [
            a
            for a in applicable
            if not any(b != a and product.binding_subsumes(a, b) for b in pool)
        ]
        minimal.sort(key=product.topological_key)
        return [HTuple(other, asserted[other]) for other in minimal]


class OnPathPreemption(PreemptionStrategy):
    """The appendix alternative: ``i`` preempts ``j`` only when every
    path from ``j`` to the item passes through ``i``."""

    name = "on-path"

    def strongest_binders(
        self,
        product: ProductHierarchy,
        asserted: Mapping[Item, bool],
        item: Item,
        relevant: Sequence[Item] | None = None,
    ) -> List[HTuple]:
        if item in asserted:
            return [HTuple(item, asserted[item])]
        applicable = _relevant(product, asserted, item, relevant)
        if not applicable:
            return []
        return _eliminate_binders(
            product, asserted, item, applicable, keep_redundant=True
        )


class NoPreemption(PreemptionStrategy):
    """The appendix's most conservative option: a conflict is declared
    whenever two applicable tuples disagree, however specific either is.
    Equivalent to binding over the transitive closure of the hierarchy."""

    name = "none"

    def strongest_binders(
        self,
        product: ProductHierarchy,
        asserted: Mapping[Item, bool],
        item: Item,
        relevant: Sequence[Item] | None = None,
    ) -> List[HTuple]:
        if item in asserted:
            return [HTuple(item, asserted[item])]
        return self.applicable(product, asserted, item, relevant)


def _eliminate_binders(
    product: ProductHierarchy,
    asserted: Mapping[Item, bool],
    item: Item,
    relevant: Sequence[Item],
    keep_redundant: bool,
) -> List[HTuple]:
    """The literal tuple-binding-graph mechanism of section 2.1.

    Build the induced product graph on the item's binding ancestor cone,
    eliminate every node that carries no applicable tuple (all but
    ``relevant`` and the item itself), and read off the item's immediate
    predecessors.
    """
    graph = product.cone_graph(item, binding=True)
    keep = set(relevant)
    keep.add(item)
    doomed = [node for node in graph if node not in keep]
    rank = {n: i for i, n in enumerate(algorithms.topological_order(graph))}
    for node in sorted(doomed, key=rank.__getitem__):
        algorithms.eliminate_node(graph, node, keep_redundant=keep_redundant)
    preds = algorithms.immediate_predecessors(graph, item)
    ordered = sorted(preds, key=product.topological_key)
    return [HTuple(node, asserted[node]) for node in ordered]


OFF_PATH = OffPathPreemption()
ON_PATH = OnPathPreemption()
NO_PREEMPTION = NoPreemption()

STRATEGIES: Dict[str, PreemptionStrategy] = {
    OFF_PATH.name: OFF_PATH,
    ON_PATH.name: ON_PATH,
    NO_PREEMPTION.name: NO_PREEMPTION,
}
