"""Assertion provenance and dependent retraction (section 3.2).

The paper's redundancy discussion turns on *why* a tuple was asserted:

    "If t₁ was asserted due to a justification different from the one
    due to which t₂ was asserted, the two tuples should indeed both be
    retained … If t₁ is later retracted, for example because its
    justification no longer was valid, t₂ should still remain valid.
    On the other hand, if t₁ was obtained as a generalization of
    several assertions such as t₂, it may be appropriate to delete t₂
    once t₁ has been inserted … In general, there is no way for the
    database to know whether there is any dependence between the
    justifications for two (or more) tuples, and therefore assumes
    independence."

:class:`ProvenanceTracker` lets a front end *state* the dependence the
database cannot infer: every assertion may carry a reason and a list of
tuples it was derived from.  Retraction can then cascade to dependents
(the generalisation case) or leave them alone (the default,
independence), and `consolidate` can be told to remove only tuples
whose reasons are subsumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.relation import HRelation
from repro.errors import TupleError
from repro.hierarchy.product import Item


@dataclass
class AssertionRecord:
    """What is known about one stored tuple's origin."""

    item: Item
    truth: bool
    reason: Optional[str] = None
    derived_from: Tuple[Item, ...] = ()


class ProvenanceTracker:
    """An :class:`HRelation` wrapper recording assertion provenance.

    Examples
    --------
    >>> # tracker = ProvenanceTracker(flies)
    >>> # tracker.assert_item(("tweety",), reason="observed 1988-03-01")
    >>> # tracker.assert_item(("bird",), reason="generalisation",
    >>> #                     derived_from=[("tweety",)])
    >>> # tracker.retract(("bird",), cascade=True)  # takes tweety along
    """

    def __init__(self, relation: HRelation) -> None:
        self.relation = relation
        self._records: Dict[Item, AssertionRecord] = {}

    # ------------------------------------------------------------------

    def assert_item(
        self,
        item: Sequence[str],
        truth: bool = True,
        reason: Optional[str] = None,
        derived_from: Sequence[Sequence[str]] = (),
        replace: bool = False,
    ) -> AssertionRecord:
        """Assert with provenance.  ``derived_from`` lists stored items
        this assertion generalises (each must currently be stored)."""
        key = self.relation.schema.check_item(item)
        sources = tuple(
            self.relation.schema.check_item(source) for source in derived_from
        )
        for source in sources:
            if source not in self.relation.asserted:
                raise TupleError(
                    "derived_from item ({}) is not asserted".format(", ".join(source))
                )
        self.relation.assert_item(key, truth=truth, replace=replace)
        record = AssertionRecord(
            item=key, truth=truth, reason=reason, derived_from=sources
        )
        self._records[key] = record
        return record

    def record_for(self, item: Sequence[str]) -> Optional[AssertionRecord]:
        return self._records.get(self.relation.schema.check_item(item))

    def reason_for(self, item: Sequence[str]) -> Optional[str]:
        record = self.record_for(item)
        return record.reason if record else None

    # ------------------------------------------------------------------

    def dependents_of(self, item: Sequence[str]) -> List[Item]:
        """Stored items recorded as derived from ``item`` (directly)."""
        key = self.relation.schema.check_item(item)
        return [
            record.item
            for record in self._records.values()
            if key in record.derived_from and record.item in self.relation.asserted
        ]

    def sources_of(self, item: Sequence[str]) -> List[Item]:
        """The stored items ``item`` was derived from (still asserted)."""
        record = self.record_for(item)
        if record is None:
            return []
        return [s for s in record.derived_from if s in self.relation.asserted]

    def retract(self, item: Sequence[str], cascade: bool = False) -> List[Item]:
        """Retract the tuple; with ``cascade=True`` also retract
        everything *derived from* it, transitively (the generalisation
        reading).  Default is the paper's independence assumption: only
        the named tuple goes.  Returns everything removed."""
        key = self.relation.schema.check_item(item)
        removed: List[Item] = []
        queue = [key]
        seen: Set[Item] = set()
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            if current in self.relation.asserted:
                self.relation.retract(current)
                removed.append(current)
                self._records.pop(current, None)
            if cascade:
                queue.extend(
                    record.item
                    for record in list(self._records.values())
                    if current in record.derived_from
                )
        return removed

    def absorb(self, generalisation: Sequence[str]) -> List[Item]:
        """The paper's generalisation clean-up: once ``generalisation``
        is stored, delete the stored tuples it was derived from (they
        are the `t₂`s it subsumes).  Returns what was removed."""
        record = self.record_for(generalisation)
        if record is None:
            return []
        removed: List[Item] = []
        for source in record.derived_from:
            if source in self.relation.asserted:
                self.relation.retract(source)
                self._records.pop(source, None)
                removed.append(source)
        return removed

    def records(self) -> List[AssertionRecord]:
        """Every record whose tuple is still stored, in storage order."""
        return [
            self._records[item]
            for item in self.relation.items()
            if item in self._records
        ]
