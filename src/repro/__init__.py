"""repro — the hierarchical relational model of Jagadish (SIGMOD 1989).

A faithful, from-scratch implementation of *Incorporating Hierarchy in a
Relational Model of Data*: classes as attribute values, inheritance with
exceptions (multiple inheritance included), the ``consolidate`` and
``explicate`` operators, hierarchical versions of the standard
relational operators, and a small database engine (catalog,
transactions, query language) on top.

Quickstart
----------
>>> from repro import Hierarchy, HRelation
>>> animal = Hierarchy("animal")
>>> animal.add_class("bird")
>>> animal.add_class("penguin", parents=["bird"])
>>> animal.add_instance("tweety", parents=["bird"])
>>> flies = HRelation([("creature", animal)], name="flies")
>>> flies.assert_item(("bird",))            # all birds fly ...
>>> flies.assert_item(("penguin",), False)  # ... except penguins
>>> flies.holds("tweety")
True
>>> flies.holds("penguin")
False
"""

from repro.core import (
    HRelation,
    HTuple,
    NO_PREEMPTION,
    OFF_PATH,
    ON_PATH,
    RelationSchema,
    UNIVERSAL,
    Conflict,
    Justification,
    binding_graph,
    check_consistent,
    complete_resolution_set,
    consolidate,
    difference,
    explicate,
    find_conflicts,
    intersection,
    is_consistent,
    join,
    justify,
    minimal_resolution_set,
    project,
    rename,
    select,
    strongest_binders,
    subsumption_graph,
    truth_of,
    union,
    member,
    select_where,
    aggregate,
)
from repro.errors import (
    AmbiguityError,
    CatalogError,
    CycleError,
    DuplicateNodeError,
    HierarchyError,
    HQLError,
    HQLSyntaxError,
    InconsistentRelationError,
    ReproError,
    SchemaError,
    StorageError,
    TransactionError,
    TupleError,
    UnknownNodeError,
)
from repro.hierarchy import (
    Hierarchy,
    HierarchyBuilder,
    ProductHierarchy,
    hierarchy_from_dict,
    hierarchy_from_edges,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "HierarchyError",
    "CycleError",
    "UnknownNodeError",
    "DuplicateNodeError",
    "SchemaError",
    "TupleError",
    "AmbiguityError",
    "InconsistentRelationError",
    "TransactionError",
    "CatalogError",
    "HQLError",
    "HQLSyntaxError",
    "StorageError",
    # hierarchy
    "Hierarchy",
    "ProductHierarchy",
    "HierarchyBuilder",
    "hierarchy_from_dict",
    "hierarchy_from_edges",
    # core
    "RelationSchema",
    "HRelation",
    "HTuple",
    "UNIVERSAL",
    "OFF_PATH",
    "ON_PATH",
    "NO_PREEMPTION",
    "Conflict",
    "Justification",
    "binding_graph",
    "check_consistent",
    "complete_resolution_set",
    "consolidate",
    "difference",
    "explicate",
    "find_conflicts",
    "intersection",
    "is_consistent",
    "join",
    "justify",
    "minimal_resolution_set",
    "project",
    "rename",
    "select",
    "strongest_binders",
    "subsumption_graph",
    "truth_of",
    "union",
    "member",
    "select_where",
    "aggregate",
]
