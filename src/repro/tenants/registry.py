"""The tenant registry: many named databases under one server process.

One ``repro serve`` process hosts a catalog of *tenants*.  Each tenant
is an independent :class:`~repro.engine.database.HierarchicalDatabase`
with its own hierarchies, relations, query cache, planner stats, and
per-database metrics registry — nothing is shared between tenants
except the process, so the same relation or hierarchy name in two
tenants can never collide.  A durable server additionally gives every
tenant its own data directory::

    <data_dir>/                    the default tenant (back-compat layout)
    <data_dir>/<tenant>/           one subdirectory per named tenant
        snapshot.bin | .json       via the stock RecoveryManager
        oplog.hql
        tenant.json                quotas and metadata

The **default tenant** occupies the data directory root — exactly the
layout single-tenant servers have always written — so any pre-existing
data dir boots unchanged and any v1/v2 client that never mentions a
``db`` keeps talking to the same database it always did.

Isolation and failure containment
---------------------------------
Each tenant carries its own writer-preferring
:class:`~repro.server.locking.ReadWriteLock`, so a bulk write in one
tenant never blocks reads in another, and per-tenant checkpoints run
under that tenant's exclusive lock only — no global stop-the-world.
A tenant whose snapshot or journal is corrupt at boot is *quarantined*:
the registry records the failure, the server keeps serving every other
tenant, and requests against the broken one raise
:class:`~repro.errors.TenantQuarantinedError` (the ``stats`` surface
lists the reason).

Quotas
------
:class:`TenantQuotas` bounds a tenant's resource footprint: stored
tuples (checked before tuple-adding statements), open cursors across
the tenant's sessions, and statement rate (a :class:`TokenBucket` —
sustained statements/second with a burst allowance).  Violations raise
the typed :class:`~repro.errors.QuotaExceededError`, which the wire
protocol reports as a structured error frame.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.engine.database import HierarchicalDatabase
from repro.errors import (
    QuotaExceededError,
    TenantError,
    TenantQuarantinedError,
    UnknownTenantError,
)
from repro.server.locking import ReadWriteLock
from repro.server.recovery import RecoveryManager

DEFAULT_TENANT = "default"
TENANT_META_FILE = "tenant.json"

#: Tenant names double as directory names and wire tokens, so they are
#: deliberately conservative: identifier-shaped, max 64 characters.
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_-]{0,63}$")


def valid_tenant_name(name: str) -> bool:
    return bool(_NAME_RE.match(name or ""))


# ----------------------------------------------------------------------
# quotas
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TenantQuotas:
    """Per-tenant resource bounds; ``None`` means unlimited.

    ``statement_rate`` is sustained statements per second; ``burst``
    is the token-bucket capacity (defaults to 2× the rate, min 1) so
    short spikes ride through while the sustained rate is enforced.
    """

    max_tuples: Optional[int] = None
    max_cursors: Optional[int] = None
    statement_rate: Optional[float] = None
    burst: Optional[int] = None

    @property
    def unlimited(self) -> bool:
        return (
            self.max_tuples is None
            and self.max_cursors is None
            and self.statement_rate is None
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "max_tuples": self.max_tuples,
            "max_cursors": self.max_cursors,
            "statement_rate": self.statement_rate,
            "burst": self.burst,
        }

    @classmethod
    def from_dict(cls, payload: Optional[Dict[str, object]]) -> "TenantQuotas":
        payload = payload or {}

        def _num(key, cast):
            value = payload.get(key)
            return None if value is None else cast(value)

        return cls(
            max_tuples=_num("max_tuples", int),
            max_cursors=_num("max_cursors", int),
            statement_rate=_num("statement_rate", float),
            burst=_num("burst", int),
        )


class TokenBucket:
    """The classic rate limiter: ``capacity`` tokens, refilled at
    ``rate`` per second; :meth:`take` spends one if available."""

    __slots__ = ("rate", "capacity", "tokens", "stamp")

    def __init__(self, rate: float, capacity: Optional[int] = None) -> None:
        self.rate = float(rate)
        self.capacity = float(
            capacity if capacity is not None else max(1.0, 2.0 * rate)
        )
        self.tokens = self.capacity
        self.stamp = time.monotonic()

    def take(self, now: Optional[float] = None) -> bool:
        now = time.monotonic() if now is None else now
        self.tokens = min(self.capacity, self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def __repr__(self) -> str:
        return "TokenBucket(rate={}, tokens={:.2f}/{:.0f})".format(
            self.rate, self.tokens, self.capacity
        )


# ----------------------------------------------------------------------
# one tenant
# ----------------------------------------------------------------------


class Tenant:
    """One named database with its lock, durability, quotas, and
    metrics.  ``quarantined`` holds the bootstrap failure message when
    the tenant's on-disk state could not be recovered (its ``database``
    is then ``None`` and every access raises)."""

    def __init__(
        self,
        name: str,
        database: Optional[HierarchicalDatabase],
        recovery: Optional[RecoveryManager] = None,
        quotas: Optional[TenantQuotas] = None,
        quarantined: Optional[str] = None,
    ) -> None:
        self.name = name
        self.database = database
        self.recovery = recovery
        self.lock = ReadWriteLock()
        self.quarantined = quarantined
        #: Set by the server when the tenant is dropped while sessions
        #: are still bound to it — their next statement reports it gone.
        self.dropped = False
        self.created_at = time.time()
        self._bucket: Optional[TokenBucket] = None
        self.quotas = quotas or TenantQuotas()
        if database is not None:
            metrics = database.metrics
            self.m_statements = metrics.counter("tenant.statements")
            self.m_errors = metrics.counter("tenant.errors")
            self.m_quota_denials = metrics.counter("tenant.quota.denials")

    @property
    def quotas(self) -> TenantQuotas:
        return self._quotas

    @quotas.setter
    def quotas(self, quotas: TenantQuotas) -> None:
        self._quotas = quotas
        self._bucket = (
            TokenBucket(quotas.statement_rate, quotas.burst)
            if quotas.statement_rate
            else None
        )

    @property
    def is_default(self) -> bool:
        return self.name == DEFAULT_TENANT

    # ------------------------------------------------------------------
    # quota checks (each raises the typed QuotaExceededError)
    # ------------------------------------------------------------------

    def check_statement_rate(self) -> None:
        if self._bucket is not None and not self._bucket.take():
            self.m_quota_denials.inc()
            raise QuotaExceededError(
                self.name,
                "statement_rate",
                self._quotas.statement_rate,
                "rate over {}/s (burst {})".format(
                    self._quotas.statement_rate, int(self._bucket.capacity)
                ),
            )

    def check_tuple_quota(self) -> None:
        """Called before tuple-adding statements (ASSERT/LOAD): once the
        committed store is at the cap, further growth is refused.  The
        check reads committed state, so a transaction staging past the
        cap is caught at its next ASSERT, not mid-commit."""
        limit = self._quotas.max_tuples
        if limit is not None:
            current = self.stored_tuples()
            if current >= limit:
                self.m_quota_denials.inc()
                raise QuotaExceededError(self.name, "max_tuples", limit, current)

    def check_cursor_quota(self, open_cursors: int) -> None:
        limit = self._quotas.max_cursors
        if limit is not None and open_cursors >= limit:
            self.m_quota_denials.inc()
            raise QuotaExceededError(self.name, "max_cursors", limit, open_cursors)

    # ------------------------------------------------------------------

    def stored_tuples(self) -> int:
        if self.database is None:
            return 0
        return sum(len(r) for r in self.database.relations.values())

    def describe(self) -> Dict[str, object]:
        """The per-tenant ``stats`` block: size, cache behaviour, quota
        state, and (when quarantined) the bootstrap failure."""
        if self.quarantined is not None:
            return {"quarantined": self.quarantined}
        cache = self.database.query_cache
        info: Dict[str, object] = {
            "database": self.database.name,
            "relations": len(self.database.relations),
            "hierarchies": len(self.database.hierarchies),
            "tuples": self.stored_tuples(),
            "statements": self.m_statements.snapshot(),
            "errors": self.m_errors.snapshot(),
            "cache": {
                "entries": len(cache),
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": round(cache.hit_rate, 4),
            },
            "quotas": {
                **self._quotas.to_dict(),
                "denials": self.m_quota_denials.snapshot(),
                "tokens": (
                    None if self._bucket is None else round(self._bucket.tokens, 2)
                ),
            },
        }
        if self.recovery is not None:
            info["data_dir"] = self.recovery.data_dir
            info["checkpoint"] = self.recovery.checkpoint_id
        return info

    def __repr__(self) -> str:
        state = "quarantined" if self.quarantined else "ok"
        return "Tenant({!r}, {})".format(self.name, state)


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------


class TenantRegistry:
    """Name → :class:`Tenant`, with durable discovery and lifecycle.

    Construct via :meth:`durable` (a data directory: the default tenant
    recovers from the root, named tenants from subdirectories, corrupt
    ones quarantined) or :meth:`memory` (no durability; tenants are
    created on demand and die with the process).
    """

    def __init__(
        self,
        default: Tenant,
        *,
        data_dir: Optional[str] = None,
        fsync: bool = False,
        snapshot_interval: int = 500,
        default_quotas: Optional[TenantQuotas] = None,
    ) -> None:
        self.data_dir = data_dir
        self.fsync = fsync
        self.snapshot_interval = snapshot_interval
        self.default_quotas = default_quotas or TenantQuotas()
        if default.quotas.unlimited and not self.default_quotas.unlimited:
            default.quotas = self.default_quotas
        self.tenants: Dict[str, Tenant] = {DEFAULT_TENANT: default}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def memory(
        cls,
        database: Optional[HierarchicalDatabase] = None,
        *,
        name: str = "server",
        default_quotas: Optional[TenantQuotas] = None,
    ) -> "TenantRegistry":
        default = Tenant(
            DEFAULT_TENANT,
            database if database is not None else HierarchicalDatabase(name),
        )
        return cls(default, default_quotas=default_quotas)

    @classmethod
    def durable(
        cls,
        data_dir: str,
        *,
        fsync: bool = False,
        snapshot_interval: int = 500,
        name: str = "server",
        default_quotas: Optional[TenantQuotas] = None,
    ) -> "TenantRegistry":
        """Recover the default tenant from the data-dir root and every
        named tenant from its subdirectory; a tenant that fails to boot
        is quarantined, never fatal."""
        recovery = RecoveryManager(
            data_dir, fsync=fsync, snapshot_interval=snapshot_interval, name=name
        )
        default = Tenant(DEFAULT_TENANT, recovery.recover(), recovery)
        registry = cls(
            default,
            data_dir=data_dir,
            fsync=fsync,
            snapshot_interval=snapshot_interval,
            default_quotas=default_quotas,
        )
        for tenant_name in sorted(registry._discover(data_dir)):
            registry._bootstrap(tenant_name)
        return registry

    @staticmethod
    def _discover(data_dir: str) -> List[str]:
        found = []
        try:
            entries = os.scandir(data_dir)
        except OSError:
            return found
        with entries:
            for entry in entries:
                if entry.is_dir() and valid_tenant_name(entry.name):
                    found.append(entry.name)
        return found

    def _tenant_dir(self, name: str) -> str:
        return os.path.join(self.data_dir, name)

    def _bootstrap(self, name: str) -> Tenant:
        """Recover one named tenant; quarantine instead of raising so a
        single corrupt tenant never takes the server down."""
        quotas = self._load_quotas(name)
        try:
            recovery = RecoveryManager(
                self._tenant_dir(name),
                fsync=self.fsync,
                snapshot_interval=self.snapshot_interval,
                name=name,
            )
            tenant = Tenant(name, recovery.recover(), recovery, quotas=quotas)
        except Exception as exc:  # corrupt snapshot/journal: quarantine
            tenant = Tenant(
                name, None, None, quotas=quotas,
                quarantined="{}: {}".format(type(exc).__name__, exc),
            )
        self.tenants[name] = tenant
        return tenant

    def _load_quotas(self, name: str) -> TenantQuotas:
        if self.data_dir is None:
            return self.default_quotas
        path = os.path.join(self._tenant_dir(name), TENANT_META_FILE)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return self.default_quotas
        return TenantQuotas.from_dict(payload.get("quotas"))

    def _save_quotas(self, name: str, quotas: TenantQuotas) -> None:
        if self.data_dir is None:
            return
        path = os.path.join(self._tenant_dir(name), TENANT_META_FILE)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"tenant": name, "quotas": quotas.to_dict()}, handle, indent=1)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    @property
    def default(self) -> Tenant:
        return self.tenants[DEFAULT_TENANT]

    def names(self) -> List[str]:
        return sorted(self.tenants)

    def __iter__(self) -> Iterator[Tenant]:
        return iter(self.tenants.values())

    def __len__(self) -> int:
        return len(self.tenants)

    def __contains__(self, name: str) -> bool:
        return name in self.tenants

    def get(self, name: str) -> Tenant:
        """Resolve a tenant for serving: unknown and quarantined names
        raise their typed errors."""
        try:
            tenant = self.tenants[name]
        except KeyError:
            raise UnknownTenantError(name, self.tenants) from None
        if tenant.quarantined is not None:
            raise TenantQuarantinedError(name, tenant.quarantined)
        return tenant

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def create(
        self, name: str, quotas: Optional[TenantQuotas] = None
    ) -> Tenant:
        if not valid_tenant_name(name):
            raise TenantError(
                "invalid tenant name {!r}: use letters, digits, '_', '-' "
                "(max 64 chars, leading letter or '_')".format(name)
            )
        if name in self.tenants:
            raise TenantError("tenant {!r} already exists".format(name))
        quotas = quotas or self.default_quotas
        recovery = None
        if self.data_dir is not None:
            recovery = RecoveryManager(
                self._tenant_dir(name),
                fsync=self.fsync,
                snapshot_interval=self.snapshot_interval,
                name=name,
            )
            database = recovery.recover()
        else:
            database = HierarchicalDatabase(name)
        tenant = Tenant(name, database, recovery, quotas=quotas)
        self.tenants[name] = tenant
        self._save_quotas(name, quotas)
        return tenant

    def drop(self, name: str) -> Tenant:
        """Remove a tenant and delete its on-disk state.  The default
        tenant cannot be dropped (v1/v2 clients depend on it)."""
        if name == DEFAULT_TENANT:
            raise TenantError("the default tenant cannot be dropped")
        try:
            tenant = self.tenants.pop(name)
        except KeyError:
            raise UnknownTenantError(name, self.tenants) from None
        if tenant.database is not None:
            tenant.database.query_cache.clear()
        if self.data_dir is not None:
            shutil.rmtree(self._tenant_dir(name), ignore_errors=True)
        return tenant

    def set_quotas(self, name: str, quotas: TenantQuotas) -> Tenant:
        tenant = self.get(name)
        tenant.quotas = quotas
        self._save_quotas(name, quotas)
        return tenant

    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, Dict[str, object]]:
        return {name: tenant.describe() for name, tenant in sorted(self.tenants.items())}

    def __repr__(self) -> str:
        return "TenantRegistry({} tenant(s): {})".format(
            len(self.tenants), ", ".join(self.names())
        )
