"""Multi-tenant hosting: many named databases under one server process.

See :mod:`repro.tenants.registry` for the machinery and
``docs/SERVER.md`` ("Multi-tenancy") for the operational story.
"""

from repro.tenants.registry import (
    DEFAULT_TENANT,
    Tenant,
    TenantQuotas,
    TenantRegistry,
    TokenBucket,
    valid_tenant_name,
)

__all__ = [
    "DEFAULT_TENANT",
    "Tenant",
    "TenantQuotas",
    "TenantRegistry",
    "TokenBucket",
    "valid_tenant_name",
]
