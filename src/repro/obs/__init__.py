"""Observability: tracing spans, a metrics registry, a slow-query log.

A leaf-level package (stdlib only — no repro imports except within
itself) so every other layer can instrument itself without cycles.
See docs/OBSERVABILITY.md for conventions and exporter formats.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.slowlog import SlowQueryEntry, SlowQueryLog
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    annotate,
    collect,
    current,
    disable,
    enable,
    enabled,
    force,
    render_span_tree,
    span,
)

__all__ = [
    "NOOP_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowQueryEntry",
    "SlowQueryLog",
    "Span",
    "annotate",
    "collect",
    "current",
    "default_registry",
    "disable",
    "enable",
    "enabled",
    "force",
    "render_span_tree",
    "span",
]
