"""Metrics: named counters, gauges, and histograms in a registry.

A :class:`MetricsRegistry` is a flat namespace of instruments with
get-or-create semantics — ``registry.counter("querycache.hits")``
returns the same :class:`Counter` every time, so call sites can either
cache the handle (hot paths) or look it up per use (cold paths).

Two registry scopes coexist:

* the **process-global default registry** (:func:`default_registry`)
  hosts core-layer metrics — ``bulk.*``, ``algebra.*``, ``views.*``,
  and the cost-based planner's ``planner.*`` family — where no
  database handle is in reach;
* each ``HierarchicalDatabase`` owns a **per-database registry**
  (``db.metrics``) for engine metrics — ``querycache.*``, ``txn.*``,
  ``hql.*`` — so independent databases (and independent tests) never
  share counts.

``STATS;`` renders both.  :meth:`MetricsRegistry.reset` zeroes
instruments *in place* rather than discarding them, so module-level
cached handles stay live across resets.

Export formats: :meth:`snapshot` (plain dict, JSON-safe — embedded in
``BENCH_obs.json`` and read by ``benchmarks/report.py``),
:meth:`to_prometheus` (text exposition format: dots become
underscores, everything gains a ``repro_`` prefix), and :meth:`rows`
(aligned name/value pairs for ``STATS;`` and the REPL).

Naming convention (see docs/OBSERVABILITY.md): dotted lower-case
``layer.noun[.verb]`` — ``querycache.hits``, ``views.refresh.delta``,
``hql.statement.ms``.  Histograms end in a unit suffix (``.ms``).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
]

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> Number:
        return self.value

    def __repr__(self) -> str:
        return "Counter({!r}, {})".format(self.name, self.value)


class Gauge:
    """A value that can go up and down (pool sizes, thresholds)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> Number:
        return self.value

    def __repr__(self) -> str:
        return "Gauge({!r}, {})".format(self.name, self.value)


#: Default histogram bucket upper bounds, in the instrument's unit
#: (milliseconds for ``.ms`` histograms): log-scaled 1-2-5 decades from
#: 10 µs to 10 s, plus the implicit +Inf bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0,
    10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
)


class Histogram:
    """Observation counts in log-scaled buckets, plus sum and count.

    Buckets hold *cumulative-style boundaries but non-cumulative
    counts*: ``counts[i]`` is the number of observations with
    ``value <= bounds[i]`` and greater than the previous bound; the
    final slot counts the overflow (+Inf).  The Prometheus exporter
    re-accumulates them into the cumulative form that format requires.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")
    kind = "histogram"

    def __init__(self, name: str, buckets: Optional[Tuple[float, ...]] = None) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(buckets) if buckets else DEFAULT_BUCKETS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bucket bounds must be sorted")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total: float = 0.0
        self.count: int = 0

    def observe(self, value: Number) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "buckets": {
                ("+Inf" if i == len(self.bounds) else repr(self.bounds[i])): n
                for i, n in enumerate(self.counts)
                if n
            },
        }

    def __repr__(self) -> str:
        return "Histogram({!r}, n={}, mean={:.3f})".format(
            self.name, self.count, self.mean
        )


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named, thread-safe collection of instruments.

    >>> registry = MetricsRegistry()
    >>> registry.counter("demo.hits").inc()
    >>> registry.counter("demo.hits").value
    1
    >>> registry.gauge("demo.pool").set(4)
    >>> sorted(registry.snapshot())
    ['demo.hits', 'demo.pool']
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._lock = threading.Lock()

    # -- get-or-create -------------------------------------------------

    def _get(self, name: str, factory, *args) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = factory(name, *args)
                    self._instruments[name] = instrument
        if not isinstance(instrument, factory):
            raise TypeError(
                "metric {!r} is a {}, not a {}".format(
                    name, type(instrument).__name__, factory.__name__
                )
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Optional[Tuple[float, ...]] = None
    ) -> Histogram:
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = Histogram(name, buckets)
                    self._instruments[name] = instrument
        if not isinstance(instrument, Histogram):
            raise TypeError(
                "metric {!r} is a {}, not a Histogram".format(
                    name, type(instrument).__name__
                )
            )
        return instrument

    # -- inspection ----------------------------------------------------

    def __iter__(self) -> Iterator[Instrument]:
        return iter(sorted(self._instruments.values(), key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def reset(self) -> None:
        """Zero every instrument in place — cached handles stay valid."""
        for instrument in self._instruments.values():
            instrument.reset()

    # -- exporters -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """``{name: value}`` — ints/floats for counters and gauges, a
        ``{count, sum, mean, buckets}`` dict for histograms.  JSON-safe."""
        return {m.name: m.snapshot() for m in self}

    def rows(self) -> List[Tuple[str, str]]:
        """``(name, rendered value)`` pairs for table display."""
        out: List[Tuple[str, str]] = []
        for m in self:
            if isinstance(m, Histogram):
                out.append(
                    (m.name, "n={} mean={:.3f} sum={:.3f}".format(m.count, m.mean, m.total))
                )
            elif isinstance(m.value, float):
                out.append((m.name, "{:.3f}".format(m.value)))
            else:
                out.append((m.name, str(m.value)))
        return out

    def to_prometheus(self, prefix: str = "repro_") -> str:
        """The Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        for m in self:
            flat = prefix + m.name.replace(".", "_").replace("-", "_")
            lines.append("# TYPE {} {}".format(flat, m.kind))
            if isinstance(m, Histogram):
                cumulative = 0
                for i, bound in enumerate(m.bounds):
                    cumulative += m.counts[i]
                    lines.append(
                        '{}_bucket{{le="{}"}} {}'.format(flat, bound, cumulative)
                    )
                lines.append(
                    '{}_bucket{{le="+Inf"}} {}'.format(flat, m.count)
                )
                lines.append("{}_sum {}".format(flat, m.total))
                lines.append("{}_count {}".format(flat, m.count))
            else:
                lines.append("{} {}".format(flat, m.value))
        return "\n".join(lines) + ("\n" if lines else "")


#: Process-global registry for core-layer metrics (bulk/algebra/views).
DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry hosting core-layer metrics."""
    return DEFAULT_REGISTRY
