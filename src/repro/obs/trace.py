"""Tracing spans: nested, wall-clocked, and free when switched off.

A *span* is one timed region of engine work — a statement, an operator,
an evaluator build — with a name, a dict of attributes, and children.
Spans nest through a context-local active stack (:data:`contextvars`,
so concurrent sessions cannot interleave each other's trees) and are
used as context managers::

    with span("algebra.join", left=a.name, right=b.name) as sp:
        out = ...
        sp.annotate(tuples_out=len(out))

Tracing is **off by default** and gated by one module-level flag:
:func:`span` checks it before allocating anything and returns the
process-wide :data:`NOOP_SPAN` singleton, whose every method is a
no-op returning ``self``.  Instrumented hot paths therefore cost one
function call and one (immediately freed) keyword dict when tracing is
disabled — the property suite pins "no net allocation" and
``benchmarks/bench_obs.py`` records the per-call cost.

Enable globally with :func:`enable`/:func:`disable`, or for one region
with :func:`force` (EXPLAIN ANALYZE uses this: tracing is switched on
for exactly one statement).  :func:`collect` combines :func:`force`
with a root span and is the usual entry point for tests and tools.

The rendered form (:func:`render_span_tree`) is what ``EXPLAIN
ANALYZE`` prints and what the slow-query log stores.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, List, Optional, Union

__all__ = [
    "NOOP_SPAN",
    "Span",
    "annotate",
    "collect",
    "current",
    "disable",
    "enable",
    "enabled",
    "force",
    "render_span_tree",
    "span",
]

#: The module-level enabled flag.  Read on every :func:`span` call
#: before any allocation; mutate only through :func:`enable` /
#: :func:`disable` / :func:`force`.
_enabled = False

#: The context-local stack of *open* spans (innermost last).  ``None``
#: until the first span opens in a context.
_stack: ContextVar[Optional[List["Span"]]] = ContextVar(
    "repro_obs_trace_stack", default=None
)


def enabled() -> bool:
    """True iff spans are currently being recorded."""
    return _enabled


def enable() -> None:
    """Switch tracing on process-wide."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Switch tracing off process-wide."""
    global _enabled
    _enabled = False


@contextmanager
def force(on: bool = True) -> Iterator[None]:
    """Temporarily set the enabled flag (restored on exit, always)."""
    global _enabled
    previous = _enabled
    _enabled = on
    try:
        yield
    finally:
        _enabled = previous


class Span:
    """One timed, attributed, nestable region of work.

    Entering pushes the span onto the context-local stack; exiting pops
    it, stamps ``elapsed_ms``, and attaches it to its parent's
    ``children`` (a parentless span is a root — the caller keeps the
    reference).  Exceptions unwind the stack like any ``with`` block,
    so an aborted transaction or a raising operator can never leak an
    open span.
    """

    __slots__ = ("name", "attrs", "children", "elapsed_ms", "_parent", "_started")

    def __init__(self, name: str, attrs: Optional[dict] = None) -> None:
        self.name = name
        self.attrs = attrs if attrs is not None else {}
        self.children: List["Span"] = []
        self.elapsed_ms: float = 0.0
        self._parent: Optional["Span"] = None
        self._started: float = 0.0

    # ------------------------------------------------------------------

    def annotate(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def add(self, counter: str, amount: Union[int, float] = 1) -> "Span":
        """Increment a numeric attribute (a per-span counter)."""
        self.attrs[counter] = self.attrs.get(counter, 0) + amount
        return self

    # ------------------------------------------------------------------

    def __enter__(self) -> "Span":
        stack = _stack.get()
        if stack is None:
            stack = []
            _stack.set(stack)
        if stack:
            self._parent = stack[-1]
        stack.append(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed_ms = (time.perf_counter() - self._started) * 1e3
        stack = _stack.get()
        if stack and stack[-1] is self:
            stack.pop()
        elif stack and self in stack:  # defensive: unwind past us
            del stack[stack.index(self) :]
        if self._parent is not None:
            self._parent.children.append(self)
        return False

    # ------------------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return "Span({!r}, {:.3f} ms, {} children)".format(
            self.name, self.elapsed_ms, len(self.children)
        )


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs) -> "_NoopSpan":
        return self

    def add(self, counter: str, amount: Union[int, float] = 1) -> "_NoopSpan":
        return self

    def __repr__(self) -> str:
        return "NOOP_SPAN"


NOOP_SPAN = _NoopSpan()

#: ``elapsed_ms``/``children``/``attrs`` on the noop read as empty so
#: callers can treat either span kind uniformly.
_NoopSpan.elapsed_ms = 0.0
_NoopSpan.children = ()
_NoopSpan.attrs = {}
_NoopSpan.name = ""


def span(name: str, **attrs) -> Union[Span, _NoopSpan]:
    """A new span (enabled) or :data:`NOOP_SPAN` (disabled).

    The flag is checked before anything is allocated; the disabled path
    is one global read and one return.
    """
    if not _enabled:
        return NOOP_SPAN
    return Span(name, attrs)


def current() -> Optional[Span]:
    """The innermost open span of this context, or ``None``."""
    if not _enabled:
        return None
    stack = _stack.get()
    return stack[-1] if stack else None


def annotate(**attrs) -> None:
    """Annotate the innermost open span; silently nothing when tracing
    is off or no span is open (so call sites need no guards)."""
    if not _enabled:
        return
    stack = _stack.get()
    if stack:
        stack[-1].attrs.update(attrs)


@contextmanager
def collect(name: str, **attrs) -> Iterator[Span]:
    """Force tracing on and open a root span — the one-call harness for
    EXPLAIN ANALYZE, the slow-query log, tests, and benchmarks."""
    with force(True):
        with span(name, **attrs) as root:
            yield root


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------


def _format_value(value: object) -> str:
    if value is True:
        return "yes"
    if value is False:
        return "no"
    if isinstance(value, float):
        return "{:.3f}".format(value)
    return str(value)


def render_span_tree(root: Union[Span, _NoopSpan], indent: str = "") -> List[str]:
    """One line per span, children indented below their parent:

    .. code-block:: text

        hql.statement (12.345 ms) kind=binaryop cache=miss
          algebra.union (11.203 ms) left=jack right=jill tuples_out=4
            algebra.pointwise (9.871 ms) candidates=57 fused=yes
    """
    if isinstance(root, _NoopSpan):
        return []
    lines: List[str] = []

    def emit(node: Span, depth: int) -> None:
        attrs = " ".join(
            "{}={}".format(key, _format_value(value))
            for key, value in node.attrs.items()
        )
        lines.append(
            "{}{} ({:.3f} ms){}".format(
                indent + "  " * depth, node.name, node.elapsed_ms,
                " " + attrs if attrs else "",
            )
        )
        for child in node.children:
            emit(child, depth + 1)

    emit(root, 0)
    return lines
