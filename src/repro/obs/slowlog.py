"""The slow-query log: a bounded ring of statements that ran long.

Attached per database via ``db.enable_slow_query_log(threshold_ms)``;
the HQL executor offers every timed statement through
:meth:`SlowQueryLog.record` and entries past the threshold are kept —
statement text, elapsed milliseconds, and the statement's span tree
(captured because the executor forces tracing on while a slow-query
log is attached, so the "why was it slow" evidence is already there).

The log is a ``deque(maxlen=…)``: old entries fall off, memory stays
bounded, and reading it (``entries()``, ``render()``, the REPL's
``.slowlog``) never mutates it.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.obs.trace import Span, render_span_tree

__all__ = ["SlowQueryEntry", "SlowQueryLog"]


class SlowQueryEntry:
    """One over-threshold statement: text, elapsed time, span tree."""

    __slots__ = ("statement", "elapsed_ms", "span")

    def __init__(
        self, statement: str, elapsed_ms: float, span: Optional[Span] = None
    ) -> None:
        self.statement = statement
        self.elapsed_ms = elapsed_ms
        self.span = span

    def render(self) -> str:
        lines = ["{:.3f} ms  {}".format(self.elapsed_ms, self.statement)]
        if self.span is not None:
            lines.extend(render_span_tree(self.span, indent="    "))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "SlowQueryEntry({!r}, {:.3f} ms)".format(
            self.statement, self.elapsed_ms
        )


class SlowQueryLog:
    """Keep the most recent statements slower than ``threshold_ms``."""

    def __init__(self, threshold_ms: float = 100.0, maxlen: int = 128) -> None:
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be >= 0")
        self.threshold_ms = float(threshold_ms)
        self._entries: deque = deque(maxlen=maxlen)

    def record(
        self, statement: str, elapsed_ms: float, span: Optional[Span] = None
    ) -> bool:
        """Offer a timed statement; keep it iff it crossed the threshold.
        Returns whether it was kept."""
        if elapsed_ms < self.threshold_ms:
            return False
        self._entries.append(SlowQueryEntry(statement, elapsed_ms, span))
        return True

    def entries(self) -> List[SlowQueryEntry]:
        """Oldest first; a copy, safe to hold."""
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def render(self) -> str:
        if not self._entries:
            return "slow-query log: empty (threshold {:.1f} ms)".format(
                self.threshold_ms
            )
        head = "slow-query log: {} entr{} over {:.1f} ms".format(
            len(self._entries),
            "y" if len(self._entries) == 1 else "ies",
            self.threshold_ms,
        )
        return "\n".join([head] + [e.render() for e in self._entries])
