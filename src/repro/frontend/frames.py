"""A frame-based knowledge representation front end.

The paper's conclusion: "The hierarchical relational model can be used
as a basis for implementing a frame-based knowledge representation
system."  :class:`FrameSystem` is that system: frames are classes in
one hierarchy, slots are binary hierarchical relations ``(frame,
value)``, slot values inherit down the frame taxonomy, and slot
overrides compile into the explicit cancellations the model requires.

Examples
--------
>>> ks = FrameSystem("zoo")
>>> ks.define_frame("elephant")
>>> ks.define_frame("royal_elephant", is_a=["elephant"])
>>> ks.define_individual("clyde", is_a=["royal_elephant"])
>>> ks.set_slot("elephant", "color", "grey")
>>> ks.set_slot("royal_elephant", "color", "white")
>>> ks.get_slot("clyde", "color")
'white'
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.relation import HRelation
from repro.errors import ReproError
from repro.frontend.resolution import assert_unique_property
from repro.hierarchy.graph import Hierarchy


class FrameSystem:
    """Frames with single-valued, inheritable, overridable slots."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.frames = Hierarchy("{}_frames".format(name), root="thing")
        self._slot_relations: Dict[str, HRelation] = {}
        self._slot_values: Dict[str, Hierarchy] = {}

    # ------------------------------------------------------------------
    # taxonomy
    # ------------------------------------------------------------------

    def define_frame(self, name: str, is_a: Sequence[str] | None = None) -> None:
        """A frame (class); ``is_a`` lists parent frames (default: root)."""
        self.frames.add_class(name, parents=list(is_a) if is_a else None)

    def define_individual(self, name: str, is_a: Sequence[str]) -> None:
        """An individual (instance) belonging to the listed frames."""
        if not is_a:
            raise ReproError("an individual needs at least one frame")
        self.frames.add_instance(name, parents=list(is_a))

    def is_a(self, specific: str, general: str) -> bool:
        return self.frames.subsumes(general, specific)

    # ------------------------------------------------------------------
    # slots
    # ------------------------------------------------------------------

    def _slot(self, slot: str) -> HRelation:
        if slot not in self._slot_relations:
            values = Hierarchy("{}_{}_values".format(self.name, slot), root="any")
            relation = HRelation(
                [("frame", self.frames), ("value", values)],
                name="{}.{}".format(self.name, slot),
            )
            self._slot_values[slot] = values
            self._slot_relations[slot] = relation
        return self._slot_relations[slot]

    def set_slot(self, frame: str, slot: str, value: str) -> None:
        """Set a slot value on a frame or individual.

        Inherited values are cancelled automatically (the Fig. 4
        pattern), so overriding just works.
        """
        relation = self._slot(slot)
        values = self._slot_values[slot]
        if value not in values:
            values.add_instance(value)
        assert_unique_property(relation, frame, value)

    def get_slot(self, frame: str, slot: str) -> Optional[str]:
        """The slot value ``frame`` holds or inherits; ``None`` if unset."""
        if slot not in self._slot_relations:
            return None
        relation = self._slot_relations[slot]
        values = self._slot_values[slot]
        for value in values.leaves():
            if relation.truth_of((frame, value)):
                return value
        return None

    def slot_justification(self, frame: str, slot: str, value: str):
        """Why (or why not) the frame holds the value — the model's
        justification machinery, verbatim."""
        return self._slot(slot).justify((frame, value))

    def individuals_with(self, slot: str, value: str) -> List[str]:
        """Every individual whose slot resolves to ``value``."""
        if slot not in self._slot_relations:
            return []
        relation = self._slot_relations[slot]
        out = []
        for individual in self.frames.leaves():
            if relation.truth_of((individual, value)):
                out.append(individual)
        return sorted(out)

    def slots(self) -> List[str]:
        return sorted(self._slot_relations)

    def slot_relation(self, slot: str) -> HRelation:
        """The backing hierarchical relation (for inspection/rendering)."""
        return self._slot(slot)
