"""Exception policies: warn on / forbid / freely permit exceptions.

An *exception* here is an assertion whose truth value differs from what
the item would inherit anyway — a negated tuple under a positive class,
or a positive re-insertion under a negated one.  The model itself
permits them freely; a front end may instead warn, or reject them, and
may pick the policy per class ("depending on factors such as the class
involved").
"""

from __future__ import annotations

import enum
import warnings
from typing import Dict, Sequence

from repro.core import binding as _binding
from repro.core.relation import HRelation
from repro.errors import ReproError


class ExceptionWarning(UserWarning):
    """Issued by the WARN policy when an exception is asserted."""


class ExceptionDisallowedError(ReproError):
    """Raised by the FORBID policy when an exception is asserted."""


class ExceptionPolicy(enum.Enum):
    ALLOW = "allow"
    WARN = "warn"
    FORBID = "forbid"


class GuardedRelation:
    """An :class:`HRelation` wrapper that applies exception policies.

    The default policy applies everywhere; per-class overrides apply to
    any assertion whose item falls under the class (checked per
    attribute value).  The most specific applicable override wins;
    among incomparable overrides the strictest wins (FORBID > WARN >
    ALLOW).

    Examples
    --------
    >>> # guarded = GuardedRelation(flies, default=ExceptionPolicy.WARN)
    >>> # guarded.set_policy("penguin", ExceptionPolicy.ALLOW)
    >>> # guarded.assert_item(("penguin",), truth=False)   # no warning
    """

    _STRICTNESS = {
        ExceptionPolicy.ALLOW: 0,
        ExceptionPolicy.WARN: 1,
        ExceptionPolicy.FORBID: 2,
    }

    def __init__(
        self, relation: HRelation, default: ExceptionPolicy = ExceptionPolicy.ALLOW
    ) -> None:
        self.relation = relation
        self.default = default
        self._overrides: Dict[str, ExceptionPolicy] = {}

    def set_policy(self, class_name: str, policy: ExceptionPolicy) -> None:
        """Override the policy for items falling under ``class_name``
        (in whichever attribute hierarchy defines that class)."""
        if not any(class_name in h for h in self.relation.schema.hierarchies):
            raise ReproError(
                "class {!r} appears in no hierarchy of {}".format(
                    class_name, self.relation.schema
                )
            )
        self._overrides[class_name] = policy

    def policy_for(self, item: Sequence[str]) -> ExceptionPolicy:
        item = self.relation.schema.check_item(item)
        applicable = []
        for value, hierarchy in zip(item, self.relation.schema.hierarchies):
            for class_name, policy in self._overrides.items():
                if class_name in hierarchy and hierarchy.subsumes(class_name, value):
                    applicable.append(policy)
        if not applicable:
            return self.default
        return max(applicable, key=self._STRICTNESS.__getitem__)

    def is_exception(self, item: Sequence[str], truth: bool) -> bool:
        """Would asserting ``(item, truth)`` override an inherited value?

        True when the item currently inherits the *opposite* truth value
        from some applicable tuple (not merely the closed-world
        default)."""
        key = self.relation.schema.check_item(item)
        current, binders = _binding.truth_and_binders(self.relation, key)
        if not binders:
            return False  # only the closed-world default; not an exception
        return current is None or current != truth

    def assert_item(self, item: Sequence[str], truth: bool = True) -> None:
        """Assert through the policy gate."""
        if self.is_exception(item, truth):
            policy = self.policy_for(item)
            if policy is ExceptionPolicy.FORBID:
                raise ExceptionDisallowedError(
                    "exception at ({}) is forbidden by policy".format(", ".join(item))
                )
            if policy is ExceptionPolicy.WARN:
                warnings.warn(
                    "asserting exception at ({})".format(", ".join(item)),
                    ExceptionWarning,
                    stacklevel=2,
                )
        self.relation.assert_item(item, truth=truth)
