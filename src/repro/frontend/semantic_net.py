"""A semantic-net front end.

Section 2.1 compares the model with the semantic nets of Fahlman's NETL
and Shastri [21, 26]: those systems make "the set of flying things … as
much a class as, say, birds", while this model separates the *taxonomy*
(an IS-A hierarchy) from *associations* (relations over it) — and wins
multi-attribute inheritance "without an attendant geometric growth in
the size of the semantic net".

:class:`SemanticNet` offers the net-style API — concepts, IS-A links,
typed associations with exceptions — storing every association verb as
one hierarchical relation over (subject taxonomy × object taxonomy).
Queries inherit down both ends at once, which is exactly the product-
hierarchy binding the nets could not express without squaring their
node count.

Examples
--------
>>> net = SemanticNet("zoo")
>>> net.concept("bird")
>>> net.concept("penguin", isa=["bird"])
>>> net.individual("tweety", isa=["bird"])
>>> net.concept("worm")
>>> net.assert_link("bird", "eats", "worm")
>>> net.ask("tweety", "eats", "worm")
True
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.relation import HRelation
from repro.errors import ReproError
from repro.hierarchy.graph import Hierarchy


class SemanticNet:
    """Concepts in one taxonomy; typed associations between them."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.taxonomy = Hierarchy("{}_things".format(name), root="thing")
        self._links: Dict[str, HRelation] = {}

    # ------------------------------------------------------------------
    # taxonomy
    # ------------------------------------------------------------------

    def concept(self, name: str, isa: Sequence[str] | None = None) -> None:
        """Add a concept node; ``isa`` lists its parent concepts."""
        self.taxonomy.add_class(name, parents=list(isa) if isa else None)

    def individual(self, name: str, isa: Sequence[str]) -> None:
        """Add an individual (a leaf concept)."""
        if not isa:
            raise ReproError("an individual needs at least one concept")
        self.taxonomy.add_instance(name, parents=list(isa))

    def isa(self, specific: str, general: str) -> bool:
        return self.taxonomy.subsumes(general, specific)

    # ------------------------------------------------------------------
    # associations
    # ------------------------------------------------------------------

    def _relation(self, verb: str) -> HRelation:
        if verb not in self._links:
            self._links[verb] = HRelation(
                [("subject", self.taxonomy), ("object", self.taxonomy)],
                name="{}.{}".format(self.name, verb),
            )
        return self._links[verb]

    def assert_link(
        self, subject: str, verb: str, obj: str, positive: bool = True
    ) -> None:
        """Assert ``subject --verb--> object``; class-level subjects and
        objects quantify universally, ``positive=False`` is an exception
        ("penguins do not eat worms")."""
        self._relation(verb).assert_item((subject, obj), truth=positive)

    def retract_link(self, subject: str, verb: str, obj: str) -> None:
        self._relation(verb).retract((subject, obj))

    def ask(self, subject: str, verb: str, obj: str) -> bool:
        """Does the association hold, inheriting down both ends?"""
        if verb not in self._links:
            return False
        return self._links[verb].truth_of((subject, obj))

    def explain(self, subject: str, verb: str, obj: str):
        """The justification for :meth:`ask` (binding deciders etc.)."""
        return self._relation(verb).justify((subject, obj))

    def objects_of(self, subject: str, verb: str) -> List[str]:
        """Every leaf object the subject is linked to (inherited links
        included, exceptions excluded)."""
        if verb not in self._links:
            return []
        relation = self._links[verb]
        out = []
        for obj in self.taxonomy.leaves():
            if relation.truth_of((subject, obj)):
                out.append(obj)
        return sorted(out)

    def subjects_of(self, verb: str, obj: str) -> List[str]:
        """Every leaf subject linked to the object."""
        if verb not in self._links:
            return []
        relation = self._links[verb]
        out = []
        for subject in self.taxonomy.leaves():
            if relation.truth_of((subject, obj)):
                out.append(subject)
        return sorted(out)

    def verbs(self) -> List[str]:
        return sorted(self._links)

    def link_relation(self, verb: str) -> HRelation:
        """The backing relation, for algebra/justification/rendering."""
        return self._relation(verb)

    def stored_link_count(self) -> int:
        """Total stored tuples across all verbs — the 'size of the
        semantic net', which stays proportional to what was *said*, not
        to the product of the taxonomy with itself."""
        return sum(len(r) for r in self._links.values())
