"""Conflict-resolving front ends (section 3.1).

The model demands *explicit* conflict resolution; languages like LISP
with Flavors instead resolve silently by precedence.  The paper's
recipe: a front end compiles each user update into a transaction that
adds whatever resolution tuples the chosen precedence implies.

:class:`PrecedenceFrontend` does exactly that, parameterised by a
ranking function over the conflicting binder tuples; the built-in
rankings cover assertion order ("left precedence" in the temporal
sense: the earlier statement wins) and newest-wins.

:func:`assert_unique_property` implements the Fig. 4 pattern for
single-valued properties: asserting "royal elephants are white" on a
colour-like attribute automatically generates the explicit cancellation
"royal elephants are not grey".
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.core import binding as _binding
from repro.core.conflicts import Conflict, find_conflicts, resolution_tuples
from repro.core.htuple import HTuple
from repro.core.relation import HRelation

Ranking = Callable[[HRelation, Conflict], HTuple]


def oldest_assertion_wins(relation: HRelation, conflict: Conflict) -> HTuple:
    """Left precedence read temporally: among the conflicting binders,
    the tuple asserted earliest wins."""
    order = {item: i for i, item in enumerate(relation.items())}
    return min(conflict.binders, key=lambda b: order.get(b.item, len(order)))


def newest_assertion_wins(relation: HRelation, conflict: Conflict) -> HTuple:
    """The most recent assertion wins (update-in-place intuition)."""
    order = {item: i for i, item in enumerate(relation.items())}
    return max(conflict.binders, key=lambda b: order.get(b.item, -1))


class PrecedenceFrontend:
    """Compile updates into conflict-resolving transactions.

    Examples
    --------
    >>> # front = PrecedenceFrontend(oldest_assertion_wins)
    >>> # front.assert_item(relation, ("student", "incoherent"), truth=False)
    >>> # -> asserts the tuple plus whatever resolution tuples the
    >>> #    precedence implies; relation stays consistent throughout.
    """

    def __init__(self, ranking: Ranking = oldest_assertion_wins, max_rounds: int = 50) -> None:
        self.ranking = ranking
        self.max_rounds = max_rounds

    def assert_item(
        self, relation: HRelation, item: Sequence[str], truth: bool = True
    ) -> List[HTuple]:
        """Assert ``(item, truth)`` and auto-resolve any conflict it
        creates, choosing each conflict's winner by the ranking.
        Returns the extra tuples asserted.  On failure the relation is
        restored and the error re-raised."""
        snapshot = relation.copy()
        added: List[HTuple] = []
        relation.assert_item(item, truth=truth)
        try:
            for _round in range(self.max_rounds):
                conflicts = find_conflicts(relation)
                if not conflicts:
                    return added
                for conflict in conflicts:
                    winner = self.ranking(relation, conflict)
                    for t in resolution_tuples(relation, conflict, winner.truth):
                        stored = relation.truth_of_stored(t.item)
                        if stored is None:
                            relation.assert_item(t.item, truth=t.truth)
                            added.append(t)
                        elif stored != t.truth:
                            relation.assert_item(t.item, truth=t.truth, replace=True)
                            added.append(t)
            raise RuntimeError(
                "conflict resolution did not converge in {} rounds".format(
                    self.max_rounds
                )
            )
        except Exception:
            relation.clear()
            for t in snapshot.tuples():
                relation.assert_item(t.item, truth=t.truth)
            raise


def assert_unique_property(
    relation: HRelation,
    subject: str,
    value: str,
    subject_attr: str | None = None,
    value_attr: str | None = None,
) -> List[HTuple]:
    """Set a single-valued property with automatic explicit cancellation.

    For a two-attribute relation like Fig. 4's ``(animal, color)``:
    asserting ``assert_unique_property(r, "royal_elephant", "white")``
    adds ``+(royal_elephant, white)`` and, for every other colour the
    subject currently inherits (here grey), the cancellation
    ``-(royal_elephant, grey)`` — "it is not enough to say that royal
    elephants are white … an explicit cancellation is required".

    Returns every tuple asserted.
    """
    schema = relation.schema
    if schema.arity != 2:
        raise ValueError(
            "assert_unique_property expects a binary (subject, value) relation"
        )
    subject_attr = subject_attr or schema.attributes[0]
    value_attr = value_attr or schema.attributes[1]
    s_index = schema.index_of(subject_attr)
    v_index = schema.index_of(value_attr)
    value_hierarchy = schema.hierarchies[v_index]

    added: List[HTuple] = []

    def build(subject_value: str, value_value: str) -> Tuple[str, ...]:
        item = [None, None]  # type: ignore[list-item]
        item[s_index] = subject_value  # type: ignore[index]
        item[v_index] = value_value  # type: ignore[index]
        return tuple(item)  # type: ignore[arg-type]

    # Cancel every other currently-inherited value first, so the final
    # state never passes through a conflict.
    for other in value_hierarchy.leaves():
        if other == value:
            continue
        item = build(subject, other)
        current, binders = _binding.truth_and_binders(relation, item)
        if binders and current is not False:
            cancellation = HTuple(item, False)
            relation.assert_item(item, truth=False, replace=True)
            added.append(cancellation)
    positive = HTuple(build(subject, value), True)
    relation.assert_item(positive.item, truth=True, replace=True)
    added.append(positive)
    return added
