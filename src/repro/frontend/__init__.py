"""Front ends over the data model.

Section 2.1: "An appropriate front-end to the database could choose to
issue warnings when an exception occurs, completely prevent exceptions,
freely permit exceptions, or do one of the three depending on factors
such as the class involved" — that is :class:`ExceptionPolicy` /
:class:`GuardedRelation`.

Section 3.1: "A front end can easily be added to provide any desired
conflict resolution semantics, including left precedence, by compiling
a user generated update request into a transaction that maintains
consistency by performing additional updates for conflict resolution" —
that is :class:`PrecedenceFrontend`.

Section 3.1 (Fig. 4 discussion): automatic *explicit cancellation* for
unique properties ("a front end … can generate the negation of the
'inherited' tuple automatically whenever an exception is stated") —
that is :func:`assert_unique_property`.

And the conclusion's target application — "the hierarchical relational
model can be used as a basis for implementing a frame-based knowledge
representation system" — is :class:`FrameSystem`.
"""

from repro.frontend.frames import FrameSystem
from repro.frontend.policies import ExceptionPolicy, GuardedRelation, ExceptionWarning
from repro.frontend.resolution import PrecedenceFrontend, assert_unique_property
from repro.frontend.semantic_net import SemanticNet

__all__ = [
    "ExceptionPolicy",
    "GuardedRelation",
    "ExceptionWarning",
    "PrecedenceFrontend",
    "assert_unique_property",
    "FrameSystem",
    "SemanticNet",
]
