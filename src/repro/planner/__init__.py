"""Cost-based planner: statistics-driven operator ordering, adaptive
gates, and cache admission.

The algebra is declarative — the paper's pointwise combinator admits
many evaluation orders with identical output — so every ordering and
gating decision is a pure performance choice.  This package centralises
those choices in one priced model fed by per-relation statistics:

* :mod:`repro.planner.stats` — per-relation tuple counts, per-attribute
  distinct-value multisets and cone-coverage estimates, patched
  incrementally from the relations' delta logs;
* :mod:`repro.planner.cost` — the decisions: symmetric n-ary combine
  ordering (with short-circuit evaluation in the pointwise engine),
  the parallel dispatch gate, the join zero-copy/materialise and
  consolidation fused/two-step modes, and query-cache admission —
  plus the estimated-vs-actual feedback loop EXPLAIN audits;
* :mod:`repro.planner.config` — the ``REPRO_PLANNER`` switch and the
  calibration constants (HQL ``SET PLANNER ON|OFF`` lands here).

Everything the planner changes is bit-identity-safe: reordering only
touches how many truth probes a candidate needs, never the candidate
set, the truths, or the emission order.  ``REPRO_PLANNER=0`` restores
the pre-planner fixed gates exactly.
"""

from repro.planner.config import PlannerConfig, config, configure, enabled, reset
from repro.planner.cost import (
    SYMMETRIC_TOKENS,
    CacheAdmission,
    CombinePlan,
    cache_admission,
    choose_join_mode,
    consolidation_mode,
    describe,
    estimate_candidates,
    observe_estimate,
    parallel_gate,
    plan_combine,
    reset_feedback,
)
from repro.planner.stats import RelationStats, overlap_estimate, stats_for

__all__ = [
    "PlannerConfig",
    "config",
    "configure",
    "enabled",
    "reset",
    "SYMMETRIC_TOKENS",
    "CacheAdmission",
    "CombinePlan",
    "cache_admission",
    "choose_join_mode",
    "consolidation_mode",
    "describe",
    "estimate_candidates",
    "observe_estimate",
    "parallel_gate",
    "plan_combine",
    "reset_feedback",
    "RelationStats",
    "overlap_estimate",
    "stats_for",
]
