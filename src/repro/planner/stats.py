"""Per-relation statistics, maintained incrementally from delta logs.

One :class:`RelationStats` snapshot per relation records the quantities
every cost decision reads:

* stored-tuple / positive / negative counts;
* per-attribute distinct-value multisets (how many stored tuples use
  each hierarchy value on each position) — the planner's value "masks",
  in the sparse dict form the overlap heuristics consume;
* ``est_extension`` — the summed leaf count under the positive tuples'
  cones (:meth:`ProductHierarchy.count_leaves_under` per tuple).  It
  overcounts overlapping cones deliberately: as a *coverage* proxy for
  "how likely is this relation to answer true at a random candidate"
  the overlap does not matter, only the relative magnitudes do.

Snapshots refresh lazily on access.  A refresh first tries the
relation's delta log (:meth:`HRelation.changes_since`): each changed
item is diffed against a mirrored copy of the asserted map and only its
contribution is patched — O(changed) instead of O(tuples).  A trimmed
log (more than ``delta_log_limit`` writes since the last look) or a
hierarchy version bump falls back to a full rebuild.  The property
suite pins the equivalence: stats patched through any delta sequence
equal stats rebuilt from scratch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

_ABSENT = object()


class RelationStats:
    """The statistics snapshot for one relation (see module docstring)."""

    def __init__(self, relation) -> None:
        self._relation = relation
        self._leaf_counts: List[Dict[str, int]] = [
            {} for _ in relation.schema.hierarchies
        ]
        self._rebuild()

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------

    def _rebuild(self) -> None:
        relation = self._relation
        self.tuples = 0
        self.positives = 0
        self.negatives = 0
        self.est_extension = 0
        #: per attribute: stored-tuple count by hierarchy value
        self.value_counts: List[Dict[str, int]] = [
            {} for _ in relation.schema.hierarchies
        ]
        self._mirror: Dict[Tuple[str, ...], bool] = {}
        for item, truth in relation.asserted.items():
            self._add(item, truth)
        self._version = relation.version
        self._product_version = tuple(relation.schema.product.version)

    def _leaves(self, item: Tuple[str, ...]) -> int:
        count = 1
        for position, (hierarchy, value) in enumerate(
            zip(self._relation.schema.hierarchies, item)
        ):
            memo = self._leaf_counts[position]
            per_value = memo.get(value)
            if per_value is None:
                per_value = memo[value] = len(hierarchy.leaves_under(value))
            count *= per_value
        return count

    def _add(self, item: Tuple[str, ...], truth: bool) -> None:
        self.tuples += 1
        if truth:
            self.positives += 1
            self.est_extension += self._leaves(item)
        else:
            self.negatives += 1
        for position, value in enumerate(item):
            counts = self.value_counts[position]
            counts[value] = counts.get(value, 0) + 1
        self._mirror[item] = truth

    def _remove(self, item: Tuple[str, ...], truth: bool) -> None:
        self.tuples -= 1
        if truth:
            self.positives -= 1
            self.est_extension -= self._leaves(item)
        else:
            self.negatives -= 1
        for position, value in enumerate(item):
            counts = self.value_counts[position]
            remaining = counts.get(value, 0) - 1
            if remaining > 0:
                counts[value] = remaining
            else:
                counts.pop(value, None)
        self._mirror.pop(item, None)

    # ------------------------------------------------------------------
    # refresh
    # ------------------------------------------------------------------

    @property
    def fresh(self) -> bool:
        relation = self._relation
        return (
            self._version == relation.version
            and self._product_version == tuple(relation.schema.product.version)
        )

    def refresh(self) -> "RelationStats":
        relation = self._relation
        if self._product_version != tuple(relation.schema.product.version):
            # A hierarchy mutation moves leaf counts under every value;
            # no per-item patch can be sound.
            self._leaf_counts = [{} for _ in relation.schema.hierarchies]
            self._rebuild()
            return self
        if self._version == relation.version:
            return self
        changed = relation.changes_since(self._version)
        if changed is None:
            self._rebuild()
            return self
        for item in changed:
            now = relation.asserted.get(item, _ABSENT)
            before = self._mirror.get(item, _ABSENT)
            if now is before:
                continue
            if before is not _ABSENT:
                self._remove(item, before)
            if now is not _ABSENT:
                self._add(item, now)
        self._version = relation.version
        return self

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def distinct(self, position: int) -> int:
        return len(self.value_counts[position])

    def coverage(self) -> int:
        """The ordering weight: estimated atoms answered *true*."""
        return self.est_extension

    def snapshot(self) -> Dict[str, object]:
        """A comparable value summary (the property suite diffs a
        delta-patched snapshot against a from-scratch rebuild)."""
        return {
            "tuples": self.tuples,
            "positives": self.positives,
            "negatives": self.negatives,
            "est_extension": self.est_extension,
            "values": tuple(
                tuple(sorted(counts.items())) for counts in self.value_counts
            ),
        }

    def __repr__(self) -> str:
        return "RelationStats({} tuples, {} positive, ~{} atoms)".format(
            self.tuples, self.positives, self.est_extension
        )


def stats_for(relation) -> RelationStats:
    """The cached, auto-refreshed stats snapshot for ``relation``
    (attached to the relation like its bulk evaluator)."""
    stats: Optional[RelationStats] = getattr(relation, "_planner_stats", None)
    if stats is None or stats._relation is not relation:
        stats = RelationStats(relation)
        relation._planner_stats = stats
        return stats
    return stats.refresh()


def est_row_bytes(rows, sample: int = 64) -> int:
    """Estimated serialised bytes per wire row, from a prefix sample.

    Used to auto-size cursor pages against the negotiated frame limit.
    Rows are the wire shapes the server ships — ``[item, truth]`` pairs
    or plain value lists — so the estimate is the JSON-ish footprint:
    string lengths plus a few bytes of per-value punctuation.  Cheap
    and deliberately rough; page sizing only needs the right order of
    magnitude.
    """
    if not rows:
        return 1
    total = 0
    count = 0
    for row in rows[:sample]:
        values = row[0] if (len(row) == 2 and isinstance(row[0], (list, tuple))) else row
        if isinstance(values, (list, tuple)):
            total += sum(len(str(v)) for v in values) + 4 * len(values) + 8
        else:
            total += len(str(values)) + 8
        count += 1
    return max(1, total // count)


def overlap_estimate(left: RelationStats, right: RelationStats) -> int:
    """Estimated meet pairs between two same-schema relations.

    Two tuples can meet only if their values overlap on *every*
    attribute; shared hierarchy values are the cheap, sweep-free proxy
    for cone overlap (a value trivially overlaps itself).  Per attribute
    the overlapping-tuple mass is summed over shared values, and the
    cross-attribute estimate is the minimum — a pair must survive every
    attribute, so no attribute can contribute more meets than its own
    overlap supports.  Nested-but-unequal cones make this an
    *under*-estimate; the EWMA feedback in :mod:`repro.planner.cost`
    corrects the aggregate bias.
    """
    estimate: Optional[int] = None
    for left_counts, right_counts in zip(left.value_counts, right.value_counts):
        if len(right_counts) < len(left_counts):
            left_counts, right_counts = right_counts, left_counts
        mass = 0
        for value, count in left_counts.items():
            other = right_counts.get(value)
            if other is not None:
                mass += min(count, other)
        estimate = mass if estimate is None else min(estimate, mass)
    return estimate or 0
