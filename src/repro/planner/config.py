"""Planner configuration: one process-wide, thread-safe config object.

Mirrors :mod:`repro.parallel.config`: the environment seeds the initial
state (``REPRO_PLANNER=0`` disables the planner wholesale, restoring
every pre-planner fixed gate bit-for-bit), ``configure()`` overrides
fields at runtime (HQL ``SET PLANNER ON|OFF`` lands here), and
``reset()`` re-reads the environment — test fixtures rely on it.

The numeric fields are the *calibration constants* every cost-based
decision shares (see docs/PLANNER.md for the gate matrix).  They are
micro-costs of the primitive operations the model prices, expressed in
microseconds / milliseconds, not tuning thresholds: the thresholds fall
out of comparing priced alternatives.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, replace

from repro.obs import default_registry

_TRUE = ("1", "true", "on", "yes")
_FALSE = ("0", "false", "off", "no")


@dataclass(frozen=True)
class PlannerConfig:
    """Immutable snapshot of the planner's knobs.

    enabled:
        Master switch.  Off = every decision reverts to the fixed gates
        that predate the planner (left-to-right evaluation, the
        ``min_tuples`` parallel constant, admit-all caching).
    min_inputs:
        Smallest n-ary combine worth planning.  Binary operators gain
        nothing from reordering (the short-circuit saves at most one
        probe) and run hot, so they skip the planner entirely.
    truth_call_us:
        Priced cost of one ``evaluator.truth(item)`` probe.
    ship_tuple_us:
        Priced cost of pickling + routing one tuple to a worker shard.
    dispatch_ms:
        Priced fixed cost of one parallel dispatch (task build, pool
        round-trip, merge).
    cache_min_cost_ms:
        A query cheaper than this produced its answer in about the time
        a cache lookup + payload copy takes — storing it can only evict
        something more valuable.  Applied only under eviction pressure.
    cache_pin_cost_ms:
        An entry at least this expensive that has also *hit* at least
        once is pinned: eviction passes over it while any unpinned
        victim exists.
    """

    enabled: bool = True
    min_inputs: int = 3
    truth_call_us: float = 2.0
    ship_tuple_us: float = 0.5
    dispatch_ms: float = 6.0
    cache_min_cost_ms: float = 0.05
    cache_pin_cost_ms: float = 1.0


_lock = threading.Lock()
_config: PlannerConfig | None = None


def _bool_env(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in _TRUE:
        return True
    if value in _FALSE:
        return False
    return default


def _from_env() -> PlannerConfig:
    return PlannerConfig(enabled=_bool_env("REPRO_PLANNER", True))


def _publish(cfg: PlannerConfig) -> None:
    """Mirror the master switch into the process-global registry so
    ``STATS;``, the REPL ``.stats`` view and the Prometheus exporter
    all report the live planner state."""
    default_registry().gauge("planner.enabled").set(1 if cfg.enabled else 0)


def config() -> PlannerConfig:
    """The current config (environment-seeded on first use)."""
    global _config
    with _lock:
        if _config is None:
            _config = _from_env()
            _publish(_config)
        return _config


def configure(**overrides) -> PlannerConfig:
    """Override fields at runtime; returns the new snapshot."""
    global _config
    with _lock:
        base = _config if _config is not None else _from_env()
        _config = replace(base, **overrides)
        _publish(_config)
        return _config


def reset() -> PlannerConfig:
    """Re-read the environment (test fixtures call this)."""
    global _config
    with _lock:
        _config = _from_env()
        _publish(_config)
        return _config


def enabled() -> bool:
    return config().enabled
