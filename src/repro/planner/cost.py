"""The cost model: one set of priced decisions for every former gate.

Every decision below compares alternatives priced in the calibration
constants of :class:`~repro.planner.config.PlannerConfig` — no decision
carries its own magic threshold.  The decisions:

* **combine order** (:func:`plan_combine`) — for a symmetric n-ary
  combine, sort the input evaluators so the pointwise engine's
  short-circuit stops as early as possible.  OR-like functions
  (``or``/``any``) are settled by the first *true*, so the inputs go
  widest-coverage first; AND-like (``and``/``all``) are settled by the
  first *false*, so narrowest-coverage first.  The candidate set, the
  emitted truths and the emission order are untouched — only the number
  of truth probes per candidate changes — which is what makes the
  reorder bit-identity-safe under every preemption strategy.
  ``andnot`` is not symmetric and is never reordered.
* **parallel gate** (:func:`parallel_gate`) — replaces the fixed
  ``REPRO_PARALLEL_MIN_TUPLES`` constant: dispatch to worker shards iff
  the priced serial evaluation exceeds the priced dispatch + shipping
  overhead.  ``min_tuples=0`` still force-enables (tests rely on it).
* **join mode** (:func:`choose_join_mode`) — zero-copy projection
  adaptors vs materialised cylindric extensions, priced per candidate
  probe + per padded tuple.
* **consolidation mode** (:func:`consolidation_mode`) — fused emission
  sweep vs build-then-consolidate, priced per candidate.
* **cache admission** (:class:`CacheAdmission`) — under eviction
  pressure, reject payloads cheaper to recompute than to look up, and
  pin hot expensive entries against eviction.

Estimates are audited: :func:`observe_estimate` keeps an EWMA of the
actual/estimated candidate ratio per operator (fed by EXPLAIN and the
traced pointwise spans) and :func:`estimate_candidates` applies it, so
systematic bias in the sweep-free overlap heuristic decays instead of
compounding.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import default_registry

from repro.planner.config import config, enabled
from repro.planner.stats import overlap_estimate, stats_for

#: Symmetric combining-function tokens and the short-circuit kind the
#: pointwise engine applies ("or": stop at first true; "and": stop at
#: first false).  ``andnot`` is order-sensitive and absent on purpose.
SYMMETRIC_TOKENS: Dict[str, str] = {
    "or": "or",
    "any": "or",
    "and": "and",
    "all": "and",
}

_ewma_lock = threading.Lock()
_ewma: Dict[str, float] = {}
_EWMA_ALPHA = 0.2


def reset_feedback() -> None:
    """Drop the observed-actuals corrections (test fixtures)."""
    with _ewma_lock:
        _ewma.clear()


class CombinePlan:
    """The planner's verdict for one n-ary combine."""

    __slots__ = ("order", "shortcircuit", "reordered")

    def __init__(self, order: List[int], shortcircuit: str, reordered: bool) -> None:
        self.order = order
        self.shortcircuit = shortcircuit
        self.reordered = reordered


def plan_combine(relations: Sequence, fn_token: Optional[str]) -> Optional[CombinePlan]:
    """Order ``relations`` for short-circuit evaluation, or ``None``
    when the combine must run exactly as written (planner off, too few
    inputs, or an order-sensitive function)."""
    cfg = config()
    if not cfg.enabled or fn_token is None:
        return None
    kind = SYMMETRIC_TOKENS.get(fn_token)
    if kind is None or len(relations) < cfg.min_inputs:
        return None
    weights = [stats_for(relation).coverage() for relation in relations]
    # Widest first settles OR fastest; narrowest first settles AND.
    # The sort is stable, so equal-coverage inputs keep syntax order
    # and an all-equal workload degrades to the identity permutation.
    order = sorted(
        range(len(relations)),
        key=(lambda i: -weights[i]) if kind == "or" else (lambda i: weights[i]),
    )
    reordered = order != list(range(len(relations)))
    registry = default_registry()
    registry.counter("planner.combine.plans").inc()
    if reordered:
        registry.counter("planner.reorders").inc()
    return CombinePlan(order, kind, reordered)


# ----------------------------------------------------------------------
# candidate estimation + feedback
# ----------------------------------------------------------------------


def _correction(op: str) -> float:
    with _ewma_lock:
        return _ewma.get(op, 1.0)


def observe_estimate(op: str, estimated: int, actual: int) -> None:
    """Feed an estimated-vs-actual pair back into the model.

    Updates the per-operator EWMA correction and counts gross misses
    (>10x either way) under ``planner.estimate.off10x`` — the number
    EXPLAIN ANALYZE flags and future stats refinement will chase."""
    registry = default_registry()
    registry.counter("planner.estimate.checks").inc()
    if estimated <= 0:
        return
    ratio = actual / estimated
    if ratio > 10.0 or (actual and ratio < 0.1):
        registry.counter("planner.estimate.off10x").inc()
    with _ewma_lock:
        previous = _ewma.get(op, 1.0)
        _ewma[op] = previous + _EWMA_ALPHA * (ratio - previous)


def estimate_candidates(relations: Sequence, op: str = "pointwise") -> int:
    """Estimated meet-closure candidate count for combining
    ``relations``: every stored tuple seeds a candidate, plus one
    candidate per estimated cross-input meet pair, scaled by the
    operator's observed-actuals correction."""
    stats = [stats_for(relation) for relation in relations]
    base = sum(s.tuples for s in stats)
    meets = 0
    for i in range(len(stats)):
        for j in range(i + 1, len(stats)):
            meets += overlap_estimate(stats[i], stats[j])
    return max(1, int(round((base + meets) * _correction(op))))


# ----------------------------------------------------------------------
# gates
# ----------------------------------------------------------------------


def parallel_gate(total: int, inputs: int) -> Tuple[bool, str]:
    """Is a parallel dispatch worth it?  Serial cost is priced as one
    truth probe per (candidate, input); parallel overhead as the fixed
    dispatch cost plus shipping each routed tuple once.  Returns
    ``(go, reason)`` — the reason string lands in ``Plan.describe()``
    and therefore in EXPLAIN."""
    cfg = config()
    serial_us = total * max(1, inputs) * cfg.truth_call_us
    overhead_us = cfg.dispatch_ms * 1e3 + total * cfg.ship_tuple_us
    registry = default_registry()
    if serial_us > overhead_us:
        registry.counter("planner.parallel.grants").inc()
        return True, ""
    registry.counter("planner.parallel.declines").inc()
    return False, "below cost gate (serial ~{:.1f}us < overhead ~{:.1f}us)".format(
        serial_us, overhead_us
    )


def choose_join_mode(
    left_tuples: int, right_tuples: int, zero_copy_available: bool
) -> str:
    """``"zero_copy"`` or ``"materialise"``.

    Zero-copy answers each candidate probe through a projection adaptor
    (a tuple-slice per probe); materialising first *builds* both
    cylindric extensions (one padded assert per stored tuple — priced
    like a truth call, plus doubling the evaluator builds) and then
    probes the same candidates.  The adaptor overhead is a fraction of
    a probe, so whenever zero-copy is sound it is also cheapest; the
    comparison is kept explicit so the decision is auditable and the
    constants stay revisable."""
    if not zero_copy_available:
        return "materialise"
    if not enabled():
        return "zero_copy"  # the legacy fixed gate picked it too
    cfg = config()
    total = left_tuples + right_tuples
    adaptor_us = total * cfg.truth_call_us * 0.25
    materialise_us = total * cfg.truth_call_us * 2.0
    return "zero_copy" if adaptor_us <= materialise_us else "materialise"


def consolidation_mode(needs_elimination_binding: bool, candidates: int) -> str:
    """``"fused"`` or ``"two-step"``.

    Non-normal-form products *must* run the literal two-step procedure
    (the fused mask sweep is only exact without elimination binding).
    Otherwise both passes are linear in the candidate count, but the
    two-step path additionally asserts every pre-consolidation
    candidate into a throwaway relation — one priced probe each — so
    the fused sweep wins at every size; the priced comparison keeps the
    gate in the shared model instead of hard-coding the answer."""
    if needs_elimination_binding:
        return "two-step"
    if not enabled():
        return "fused"  # the legacy fixed gate
    cfg = config()
    fused_us = candidates * cfg.truth_call_us * 0.5
    two_step_us = candidates * cfg.truth_call_us * 1.5
    return "fused" if fused_us <= two_step_us else "two-step"


# ----------------------------------------------------------------------
# cache admission
# ----------------------------------------------------------------------


class CacheAdmission:
    """The query cache's admission + pinning policy.

    ``registry`` is the owning database's metrics registry: the
    admission floor adapts to the observed ``hql.statement.ms``
    distribution once enough statements have been timed (a deployment
    whose cheapest statements take 5 ms should not hoard 0.1 ms
    entries just because the default floor is lower).  Both hooks
    consult the live config, so ``SET PLANNER OFF`` restores admit-all
    behaviour immediately.
    """

    def __init__(self, registry=None) -> None:
        self.registry = registry

    def _floor_ms(self) -> float:
        floor = config().cache_min_cost_ms
        if self.registry is not None:
            histogram = self.registry.histogram("hql.statement.ms")
            if histogram.count >= 200:
                floor = min(max(floor, 0.02 * histogram.mean), 10.0 * floor)
        return floor

    def admit(self, cost_ms: Optional[float]) -> bool:
        """Called only under eviction pressure: is this payload worth
        evicting something for?"""
        if not enabled() or cost_ms is None:
            return True
        return cost_ms >= self._floor_ms()

    def pin(self, cost_ms: Optional[float], hits: int) -> bool:
        """Hot (hit at least once) *and* expensive entries survive
        eviction scans while any unpinned victim exists."""
        if not enabled() or cost_ms is None:
            return False
        return hits >= 1 and cost_ms >= config().cache_pin_cost_ms


def cache_admission(registry=None) -> CacheAdmission:
    """The admission policy for a database's query cache."""
    return CacheAdmission(registry)


# ----------------------------------------------------------------------
# state reporting
# ----------------------------------------------------------------------


def describe() -> Dict[str, object]:
    """The planner state block for ``STATS;`` payloads and the server
    ``stats`` admin verb."""
    cfg = config()
    registry = default_registry()
    with _ewma_lock:
        corrections = dict(_ewma)
    return {
        "enabled": cfg.enabled,
        "min_inputs": cfg.min_inputs,
        "cache_min_cost_ms": cfg.cache_min_cost_ms,
        "cache_pin_cost_ms": cfg.cache_pin_cost_ms,
        "reorders": registry.counter("planner.reorders").value,
        "combine_plans": registry.counter("planner.combine.plans").value,
        "parallel_grants": registry.counter("planner.parallel.grants").value,
        "parallel_declines": registry.counter("planner.parallel.declines").value,
        "estimate_checks": registry.counter("planner.estimate.checks").value,
        "estimate_off10x": registry.counter("planner.estimate.off10x").value,
        "corrections": corrections,
    }
