"""Command-line entry points: ``python -m repro <command>``.

Commands
--------
``repl [db.json]``
    Start the interactive HQL shell, optionally over a saved database.
``run script.hql [--db db.json] [--save out.json]``
    Execute an HQL script file (against a loaded database if ``--db``),
    print each result, optionally save the final state.
``serve [--data-dir DIR] [--port P] [--admin-port P] ...``
    Serve a database over the HQL wire protocol (docs/SERVER.md).  With
    ``--data-dir`` the server recovers from snapshot + oplog on boot,
    journals every committed write, and checkpoints periodically and at
    graceful shutdown (SIGINT/SIGTERM drain in-flight statements).
``connect [--host H] [--port P] [--db TENANT] [--wire-format ...]``
    Interactive HQL shell over the wire against a running server,
    optionally bound to a named tenant (``\\use`` switches later).
``tenants [--host H] [--port P] [--json] [create|drop NAME ...]``
    List a server's tenants (sizes, cache hit rates, quota state), or
    manage them: ``tenants create NAME [--max-tuples N] ...``,
    ``tenants drop NAME``.
``replicas [--host H] [--port P] [--json]``
    A server's replication role; on a leader, per-follower lag.
``version``
    Print the package version.

Replication: ``serve --data-dir DIR`` makes a *leader* (it has a
journal to ship); ``serve --replicate-from HOST:PORT`` makes a
read-only *follower* that bootstraps from the leader's snapshot and
replays its journal live (``--max-staleness`` bounds how stale a
follower will serve reads).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
from typing import List, Optional

from repro import __version__
from repro.engine.database import HierarchicalDatabase
from repro.engine.hql import HQLExecutor
from repro.engine.repl import HQLRepl
from repro.errors import ReproError

DEFAULT_PORT = 7497


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The hierarchical relational model (Jagadish, SIGMOD 1989).",
    )
    commands = parser.add_subparsers(dest="command")

    repl = commands.add_parser("repl", help="interactive HQL shell")
    repl.add_argument("database", nargs="?", help="a saved database (JSON)")

    run = commands.add_parser("run", help="execute an HQL script file")
    run.add_argument("script", help="path to the .hql file")
    run.add_argument("--db", help="load this database first")
    run.add_argument("--save", help="save the database here afterwards")
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-statement output"
    )

    serve = commands.add_parser("serve", help="serve HQL over the network")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT, help="port (0 = ephemeral)")
    serve.add_argument(
        "--data-dir",
        help="durable data directory (snapshot + oplog); recovered on boot",
    )
    serve.add_argument("--db", help="serve this saved database (no durability)")
    serve.add_argument(
        "--snapshot-interval",
        type=int,
        default=500,
        help="journalled statements between automatic checkpoints (0 = off)",
    )
    serve.add_argument(
        "--fsync",
        action="store_true",
        help="fsync the oplog on every committed write (power-loss durability)",
    )
    serve.add_argument(
        "--admin-port",
        type=int,
        help="also serve HTTP /metrics /stats /slowlog /sessions here",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        help="enable the slow-query log at this threshold (milliseconds)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        help="shard-parallel worker processes for large queries (0 = serial)",
    )
    serve.add_argument(
        "--replicate-from",
        metavar="HOST:PORT",
        help="run as a read-only follower streaming this leader's journal",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="follower reconnect delay after losing the leader (seconds)",
    )
    serve.add_argument(
        "--max-staleness",
        type=float,
        help="follower refuses reads once this many seconds behind the leader "
        "(default: serve reads no matter how stale)",
    )
    serve.add_argument(
        "--tenants",
        metavar="NAME",
        nargs="+",
        help="named tenants to create at boot (beyond those discovered "
        "in --data-dir subdirectories)",
    )
    serve.add_argument(
        "--max-tuples",
        type=int,
        help="default per-tenant quota: stored tuples",
    )
    serve.add_argument(
        "--max-cursors",
        type=int,
        help="default per-tenant quota: open cursors",
    )
    serve.add_argument(
        "--statement-rate",
        type=float,
        help="default per-tenant quota: sustained statements per second",
    )

    connect = commands.add_parser("connect", help="HQL shell over the wire")
    connect.add_argument("--host", default="127.0.0.1")
    connect.add_argument("--port", type=int, default=DEFAULT_PORT)
    connect.add_argument(
        "--db", help="bind the session to this tenant (default: 'default')"
    )
    connect.add_argument(
        "--wire-format",
        choices=("binary", "json"),
        help="result encoding to prefer (default: REPRO_WIRE_FORMAT or binary)",
    )

    tenants = commands.add_parser(
        "tenants", help="list or manage a server's tenants"
    )
    tenants.add_argument("action", nargs="?", choices=("create", "drop", "quotas"))
    tenants.add_argument("name", nargs="?", help="tenant name (for create/drop/quotas)")
    tenants.add_argument("--host", default="127.0.0.1")
    tenants.add_argument("--port", type=int, default=DEFAULT_PORT)
    tenants.add_argument(
        "--json", action="store_true", help="raw JSON instead of a table"
    )
    tenants.add_argument("--max-tuples", type=int, help="quota: stored tuples")
    tenants.add_argument("--max-cursors", type=int, help="quota: open cursors")
    tenants.add_argument(
        "--statement-rate", type=float, help="quota: sustained statements/second"
    )

    replicas = commands.add_parser(
        "replicas", help="show a server's replication role and follower lag"
    )
    replicas.add_argument("--host", default="127.0.0.1")
    replicas.add_argument("--port", type=int, default=DEFAULT_PORT)
    replicas.add_argument(
        "--json", action="store_true", help="raw JSON instead of a table"
    )

    commands.add_parser("version", help="print the package version")
    return parser


def _cmd_serve(args) -> int:
    from repro.server import HQLServer

    if args.data_dir and args.db:
        print("error: --data-dir and --db are mutually exclusive")
        return 2
    if args.replicate_from and (args.data_dir or args.db):
        print(
            "error: --replicate-from streams all state from the leader; "
            "it cannot combine with --data-dir or --db"
        )
        return 2
    if args.workers is not None:
        if args.workers < 0:
            print("error: --workers must be >= 0")
            return 2
        from repro import parallel

        parallel.configure(workers=args.workers)
    database = None
    if args.db:
        database = HierarchicalDatabase.load(args.db)

    default_quotas = None
    if args.max_tuples or args.max_cursors or args.statement_rate:
        from repro.tenants import TenantQuotas

        default_quotas = TenantQuotas(
            max_tuples=args.max_tuples,
            max_cursors=args.max_cursors,
            statement_rate=args.statement_rate,
        )

    server = HQLServer(
        database,
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        snapshot_interval=args.snapshot_interval,
        fsync=args.fsync,
        admin_port=args.admin_port,
        slow_query_ms=args.slow_ms,
        replicate_from=args.replicate_from,
        max_staleness_s=args.max_staleness,
        retry_s=args.poll_interval,
        default_quotas=default_quotas,
        tenants=tuple(args.tenants or ()),
    )

    async def main() -> None:
        host, port = await server.start()
        if server.follower_state is not None:
            print(
                "replicating from leader {} (read-only follower)".format(
                    server.follower_state.leader_addr
                ),
                flush=True,
            )
        recovery = server.recovery
        if recovery is not None and recovery.last_recovery is not None:
            info = recovery.last_recovery
            print(
                "recovered from {}: snapshot={} checkpoint={} replayed={} "
                "statement(s){}".format(
                    recovery.data_dir,
                    "yes" if info["snapshot"] else "no",
                    info["checkpoint"],
                    info["replayed"],
                    " (stale oplog discarded)" if info["discarded_stale_log"] else "",
                )
            )
        print("repro server listening on {}:{}".format(host, port), flush=True)
        named = [n for n in server.registry.names() if n != "default"]
        if named:
            print(
                "hosting {} tenant(s): default, {}".format(
                    len(named) + 1, ", ".join(named)
                ),
                flush=True,
            )
        if server.admin_port is not None:
            print(
                "admin endpoint on http://{}:{} (/metrics /stats /slowlog)".format(
                    host, server.admin_port
                ),
                flush=True,
            )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(sig, stop.set)
        serve_task = asyncio.create_task(server.serve_forever())
        await stop.wait()
        print("shutting down: draining in-flight statements ...", flush=True)
        await server.shutdown(drain=True)
        serve_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serve_task

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    print("server stopped")
    return 0


def _cmd_replicas(args) -> int:
    import json

    from repro.client import HQLClient
    from repro.errors import ServerError

    client = HQLClient(host=args.host, port=args.port)
    try:
        payload = client.replication()
    except ServerError as exc:
        print("error: {}".format(exc))
        return 1
    finally:
        client.close()
    if args.json:
        print(json.dumps(payload, indent=1))
        return 0
    role = payload.get("role", "?")
    if role == "single":
        print("role: single (no replication configured)")
        return 0
    if role == "follower":
        print(
            "role: follower of {}  connected={}  position=({}, {})  "
            "lag={} entr{}  staleness={} ms  resyncs={}".format(
                payload.get("leader"),
                payload.get("connected"),
                payload.get("checkpoint"),
                payload.get("offset"),
                payload.get("lag_entries"),
                "y" if payload.get("lag_entries") == 1 else "ies",
                payload.get("staleness_ms"),
                payload.get("resyncs"),
            )
        )
        return 0
    print(
        "role: leader  generation={}  position=({}, {})  shipped={} entr{}".format(
            payload.get("generation"),
            payload.get("checkpoint"),
            payload.get("end_offset"),
            (payload.get("ship") or {}).get("entries", 0),
            "y" if (payload.get("ship") or {}).get("entries") == 1 else "ies",
        )
    )
    followers = payload.get("followers") or []
    if not followers:
        print("no followers attached")
        return 0
    print(
        "{:<24} {:>4} {:>6} {:>8} {:>12} {:>10} {:>10}".format(
            "follower", "gen", "ckpt", "offset", "lag_entries", "lag_ms", "seen_s"
        )
    )
    for row in followers:
        print(
            "{:<24} {:>4} {:>6} {:>8} {:>12} {:>10} {:>10}".format(
                (row.get("addr") or row.get("id") or "?")[:24],
                row.get("generation"),
                row.get("checkpoint"),
                row.get("offset"),
                row.get("lag_entries"),
                row.get("lag_ms"),
                row.get("last_seen_s"),
            )
        )
    return 0


def _cmd_connect(args) -> int:
    from repro.client import HQLClient, RemoteRepl
    from repro.errors import ServerError

    client = HQLClient(
        host=args.host, port=args.port, wire_format=args.wire_format, db=args.db
    )
    try:
        client.connect()
        if args.db:
            client.use(args.db)
    except ServerError as exc:
        print("error: {}".format(exc))
        client.close()
        return 1
    try:
        RemoteRepl(client).run()
    finally:
        client.close()
    return 0


def _cmd_tenants(args) -> int:
    import json

    from repro.client import HQLClient, _render_tenants
    from repro.errors import ServerError

    quotas = {}
    if args.max_tuples is not None:
        quotas["max_tuples"] = args.max_tuples
    if args.max_cursors is not None:
        quotas["max_cursors"] = args.max_cursors
    if args.statement_rate is not None:
        quotas["statement_rate"] = args.statement_rate

    client = HQLClient(host=args.host, port=args.port)
    try:
        if args.action in ("create", "drop", "quotas"):
            if not args.name:
                print("error: 'tenants {}' needs a tenant name".format(args.action))
                return 2
            if args.action == "create":
                client.create_tenant(args.name, quotas=quotas or None)
                print("created tenant {!r}".format(args.name))
            elif args.action == "drop":
                client.drop_tenant(args.name)
                print("dropped tenant {!r}".format(args.name))
            else:
                client.set_tenant_quotas(args.name, quotas)
                print("updated quotas for tenant {!r}".format(args.name))
        rows = client.tenants()
    except ServerError as exc:
        print("error: {}".format(exc))
        return 1
    finally:
        client.close()
    if args.json:
        print(json.dumps(rows, indent=1))
    else:
        print(_render_tenants(rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "version":
        print(__version__)
        return 0
    if args.command == "repl":
        if args.database:
            try:
                database = HierarchicalDatabase.load(args.database)
            except (ReproError, OSError) as exc:
                print("error: {}".format(exc))
                return 1
        else:
            database = HierarchicalDatabase("session")
        HQLRepl(database).run()
        return 0
    if args.command == "run":
        if args.db:
            database = HierarchicalDatabase.load(args.db)
        else:
            database = HierarchicalDatabase("script")
        with open(args.script, "r", encoding="utf-8") as handle:
            text = handle.read()
        session = HQLExecutor(database)
        for result in session.run(text):
            if not args.quiet:
                print(result)
        if args.save:
            database.save(args.save)
        return 0
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "connect":
        return _cmd_connect(args)
    if args.command == "replicas":
        return _cmd_replicas(args)
    if args.command == "tenants":
        return _cmd_tenants(args)
    _build_parser().print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
