"""Command-line entry points: ``python -m repro <command>``.

Commands
--------
``repl [db.json]``
    Start the interactive HQL shell, optionally over a saved database.
``run script.hql [--db db.json] [--save out.json]``
    Execute an HQL script file (against a loaded database if ``--db``),
    print each result, optionally save the final state.
``version``
    Print the package version.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro import __version__
from repro.engine.database import HierarchicalDatabase
from repro.engine.hql import HQLExecutor
from repro.engine.repl import HQLRepl


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The hierarchical relational model (Jagadish, SIGMOD 1989).",
    )
    commands = parser.add_subparsers(dest="command")

    repl = commands.add_parser("repl", help="interactive HQL shell")
    repl.add_argument("database", nargs="?", help="a saved database (JSON)")

    run = commands.add_parser("run", help="execute an HQL script file")
    run.add_argument("script", help="path to the .hql file")
    run.add_argument("--db", help="load this database first")
    run.add_argument("--save", help="save the database here afterwards")
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-statement output"
    )

    commands.add_parser("version", help="print the package version")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "version":
        print(__version__)
        return 0
    if args.command == "repl":
        if args.database:
            database = HierarchicalDatabase.load(args.database)
        else:
            database = HierarchicalDatabase("session")
        HQLRepl(database).run()
        return 0
    if args.command == "run":
        if args.db:
            database = HierarchicalDatabase.load(args.db)
        else:
            database = HierarchicalDatabase("script")
        with open(args.script, "r", encoding="utf-8") as handle:
            text = handle.read()
        session = HQLExecutor(database)
        for result in session.run(text):
            if not args.quiet:
                print(result)
        if args.save:
            database.save(args.save)
        return 0
    _build_parser().print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
