"""Command-line entry points: ``python -m repro <command>``.

Commands
--------
``repl [db.json]``
    Start the interactive HQL shell, optionally over a saved database.
``run script.hql [--db db.json] [--save out.json]``
    Execute an HQL script file (against a loaded database if ``--db``),
    print each result, optionally save the final state.
``serve [--data-dir DIR] [--port P] [--admin-port P] ...``
    Serve a database over the HQL wire protocol (docs/SERVER.md).  With
    ``--data-dir`` the server recovers from snapshot + oplog on boot,
    journals every committed write, and checkpoints periodically and at
    graceful shutdown (SIGINT/SIGTERM drain in-flight statements).
``connect [--host H] [--port P] [--wire-format binary|json]``
    Interactive HQL shell over the wire against a running server.
``version``
    Print the package version.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
from typing import List, Optional

from repro import __version__
from repro.engine.database import HierarchicalDatabase
from repro.engine.hql import HQLExecutor
from repro.engine.repl import HQLRepl
from repro.errors import ReproError

DEFAULT_PORT = 7497


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The hierarchical relational model (Jagadish, SIGMOD 1989).",
    )
    commands = parser.add_subparsers(dest="command")

    repl = commands.add_parser("repl", help="interactive HQL shell")
    repl.add_argument("database", nargs="?", help="a saved database (JSON)")

    run = commands.add_parser("run", help="execute an HQL script file")
    run.add_argument("script", help="path to the .hql file")
    run.add_argument("--db", help="load this database first")
    run.add_argument("--save", help="save the database here afterwards")
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-statement output"
    )

    serve = commands.add_parser("serve", help="serve HQL over the network")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT, help="port (0 = ephemeral)")
    serve.add_argument(
        "--data-dir",
        help="durable data directory (snapshot + oplog); recovered on boot",
    )
    serve.add_argument("--db", help="serve this saved database (no durability)")
    serve.add_argument(
        "--snapshot-interval",
        type=int,
        default=500,
        help="journalled statements between automatic checkpoints (0 = off)",
    )
    serve.add_argument(
        "--fsync",
        action="store_true",
        help="fsync the oplog on every committed write (power-loss durability)",
    )
    serve.add_argument(
        "--admin-port",
        type=int,
        help="also serve HTTP /metrics /stats /slowlog /sessions here",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        help="enable the slow-query log at this threshold (milliseconds)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        help="shard-parallel worker processes for large queries (0 = serial)",
    )

    connect = commands.add_parser("connect", help="HQL shell over the wire")
    connect.add_argument("--host", default="127.0.0.1")
    connect.add_argument("--port", type=int, default=DEFAULT_PORT)
    connect.add_argument(
        "--wire-format",
        choices=("binary", "json"),
        help="result encoding to prefer (default: REPRO_WIRE_FORMAT or binary)",
    )

    commands.add_parser("version", help="print the package version")
    return parser


def _cmd_serve(args) -> int:
    from repro.server import HQLServer

    if args.data_dir and args.db:
        print("error: --data-dir and --db are mutually exclusive")
        return 2
    if args.workers is not None:
        if args.workers < 0:
            print("error: --workers must be >= 0")
            return 2
        from repro import parallel

        parallel.configure(workers=args.workers)
    database = None
    if args.db:
        database = HierarchicalDatabase.load(args.db)

    server = HQLServer(
        database,
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        snapshot_interval=args.snapshot_interval,
        fsync=args.fsync,
        admin_port=args.admin_port,
        slow_query_ms=args.slow_ms,
    )

    async def main() -> None:
        host, port = await server.start()
        recovery = server.recovery
        if recovery is not None and recovery.last_recovery is not None:
            info = recovery.last_recovery
            print(
                "recovered from {}: snapshot={} checkpoint={} replayed={} "
                "statement(s){}".format(
                    recovery.data_dir,
                    "yes" if info["snapshot"] else "no",
                    info["checkpoint"],
                    info["replayed"],
                    " (stale oplog discarded)" if info["discarded_stale_log"] else "",
                )
            )
        print("repro server listening on {}:{}".format(host, port), flush=True)
        if server.admin_port is not None:
            print(
                "admin endpoint on http://{}:{} (/metrics /stats /slowlog)".format(
                    host, server.admin_port
                ),
                flush=True,
            )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(sig, stop.set)
        serve_task = asyncio.create_task(server.serve_forever())
        await stop.wait()
        print("shutting down: draining in-flight statements ...", flush=True)
        await server.shutdown(drain=True)
        serve_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serve_task

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    print("server stopped")
    return 0


def _cmd_connect(args) -> int:
    from repro.client import HQLClient, RemoteRepl
    from repro.errors import ServerError

    client = HQLClient(host=args.host, port=args.port, wire_format=args.wire_format)
    try:
        client.connect()
    except ServerError as exc:
        print("error: {}".format(exc))
        return 1
    try:
        RemoteRepl(client).run()
    finally:
        client.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "version":
        print(__version__)
        return 0
    if args.command == "repl":
        if args.database:
            try:
                database = HierarchicalDatabase.load(args.database)
            except (ReproError, OSError) as exc:
                print("error: {}".format(exc))
                return 1
        else:
            database = HierarchicalDatabase("session")
        HQLRepl(database).run()
        return 0
    if args.command == "run":
        if args.db:
            database = HierarchicalDatabase.load(args.db)
        else:
            database = HierarchicalDatabase("script")
        with open(args.script, "r", encoding="utf-8") as handle:
            text = handle.read()
        session = HQLExecutor(database)
        for result in session.run(text):
            if not args.quiet:
                print(result)
        if args.save:
            database.save(args.save)
        return 0
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "connect":
        return _cmd_connect(args)
    _build_parser().print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
